package simnet

import "strings"

// CDN describes a content delivery network: its display name, the AS it
// announces from, and the CNAME suffixes that identify it — the same
// detection approach as the WebPagetest cdn.h list the paper matches
// CNAME records against (§8.1.2).
type CDN struct {
	ID      uint8
	Name    string
	ASN     uint32
	Suffix  string // canonical CNAME suffix, e.g. "edgekey.net"
	Aliases []string
}

// The registry mirrors the CDNs appearing in the paper's Fig. 7b/7c.
// ID 0 is reserved for "no CDN".
var cdns = []CDN{
	{ID: 1, Name: "Akamai", ASN: 20940, Suffix: "edgekey.net", Aliases: []string{"edgesuite.net", "akamaized.net"}},
	{ID: 2, Name: "Google", ASN: 15169, Suffix: "ghs.googlehosted.com", Aliases: []string{"googlehosted.com", "ghs.google.com"}},
	{ID: 3, Name: "Fastly", ASN: 54113, Suffix: "fastly.net", Aliases: []string{"fastlylb.net"}},
	{ID: 4, Name: "Incapsula", ASN: 19551, Suffix: "incapdns.net"},
	{ID: 5, Name: "Amazon", ASN: 16509, Suffix: "cloudfront.net", Aliases: []string{"awsglobalaccelerator.com"}},
	{ID: 6, Name: "WordPress", ASN: 14618, Suffix: "wordpress.com", Aliases: []string{"wp.com"}},
	{ID: 7, Name: "Facebook", ASN: 32934, Suffix: "fbcdn.net"},
	{ID: 8, Name: "Instart", ASN: 33438, Suffix: "insnw.net"},
	{ID: 9, Name: "Zenedge", ASN: 19551, Suffix: "zenedge.net"},
	{ID: 10, Name: "Highwinds", ASN: 33438, Suffix: "hwcdn.net"},
	{ID: 11, Name: "CHN Net", ASN: 4837, Suffix: "chinanetcenter.com", Aliases: []string{"wscdns.com"}},
	{ID: 12, Name: "Cloudflare", ASN: 13335, Suffix: "cdn.cloudflare.net"},
}

// CDNRegistry resolves CDN IDs, names, and CNAME patterns.
type CDNRegistry struct {
	list     []CDN
	bySuffix map[string]uint8
	byID     map[uint8]*CDN
}

// NewCDNRegistry builds the embedded registry.
func NewCDNRegistry() *CDNRegistry {
	r := &CDNRegistry{
		list:     append([]CDN(nil), cdns...),
		bySuffix: make(map[string]uint8),
		byID:     make(map[uint8]*CDN),
	}
	for i := range r.list {
		c := &r.list[i]
		r.byID[c.ID] = c
		r.bySuffix[c.Suffix] = c.ID
		for _, a := range c.Aliases {
			r.bySuffix[a] = c.ID
		}
	}
	return r
}

// All returns the registered CDNs.
func (r *CDNRegistry) All() []CDN { return r.list }

// ByID returns the CDN with the given ID, or nil (ID 0 = no CDN).
func (r *CDNRegistry) ByID(id uint8) *CDN { return r.byID[id] }

// Name returns the CDN display name for id, or "" for no CDN.
func (r *CDNRegistry) Name(id uint8) string {
	if c := r.byID[id]; c != nil {
		return c.Name
	}
	return ""
}

// Detect matches a CNAME target against the registry's suffix patterns
// and returns the CDN ID (0 if no pattern matches) — the cdn.h-style
// classification.
func (r *CDNRegistry) Detect(cnameTarget string) uint8 {
	t := strings.TrimSuffix(strings.ToLower(cnameTarget), ".")
	for {
		if id, ok := r.bySuffix[t]; ok {
			return id
		}
		dot := strings.IndexByte(t, '.')
		if dot < 0 {
			return 0
		}
		t = t[dot+1:]
	}
}

// CNAMETarget synthesises the CNAME target a domain hosted on CDN id
// would present, e.g. "example-com.edgekey.net".
func (r *CDNRegistry) CNAMETarget(domain string, id uint8) string {
	c := r.byID[id]
	if c == nil {
		return ""
	}
	return strings.ReplaceAll(domain, ".", "-") + "." + c.Suffix
}
