package pack

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/archived"
	"repro/internal/toplist"
)

// seedStore builds a DiskStore with a deterministic mix of snapshots
// and gaps, the raw material every pack test starts from.
func seedStore(t testing.TB, dir string) *toplist.DiskStore {
	t.Helper()
	store, err := toplist.CreateDiskStore(dir, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SetScale("test"); err != nil {
		t.Fatal(err)
	}
	if err := store.Expect("alexa", "umbrella"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for _, p := range []string{"alexa", "umbrella", "majestic"} {
		for d := toplist.Day(0); d <= 5; d++ {
			if p == "majestic" && d == 3 {
				continue // keep a gap
			}
			n := 3 + rng.Intn(10)
			names := make([]string, n)
			for i := range names {
				names[i] = fmt.Sprintf("%s-%d-%d.example.com", p, d, i)
			}
			if err := store.Put(p, d, toplist.New(names)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return store
}

func packStore(t testing.TB, store *toplist.DiskStore) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "joint.pack")
	if err := Write(path, store); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestPackRoundTrip pins the core contract: a pack written from a
// DiskStore reopens as a Source with the same range, providers,
// scale, expected set, per-slot decoded lists, and per-slot raw bytes
// and hashes.
func TestPackRoundTrip(t *testing.T) {
	store := seedStore(t, t.TempDir())
	p, err := OpenFile(packStore(t, store))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if p.First() != store.First() || p.Last() != store.Last() || p.Days() != store.Days() {
		t.Fatalf("range (%v,%v,%d), want (%v,%v,%d)",
			p.First(), p.Last(), p.Days(), store.First(), store.Last(), store.Days())
	}
	if !reflect.DeepEqual(p.Providers(), store.Providers()) {
		t.Fatalf("providers %v, want %v", p.Providers(), store.Providers())
	}
	if p.Scale() != "test" {
		t.Fatalf("scale %q", p.Scale())
	}
	if !reflect.DeepEqual(p.Expected(), store.Expected()) {
		t.Fatalf("expected %v, want %v", p.Expected(), store.Expected())
	}
	for _, prov := range store.Providers() {
		for d := store.First(); d <= store.Last(); d++ {
			want := store.Get(prov, d)
			got := p.Get(prov, d)
			if (want == nil) != (got == nil) {
				t.Fatalf("%s %v: presence mismatch (pack %v, store %v)", prov, d, got != nil, want != nil)
			}
			if want == nil {
				if p.Has(prov, d) {
					t.Fatalf("%s %v: Has true for absent slot", prov, d)
				}
				continue
			}
			if !reflect.DeepEqual(got.Names(), want.Names()) {
				t.Fatalf("%s %v: decoded list differs", prov, d)
			}
			wantRaw, err := store.GetRaw(prov, d)
			if err != nil {
				t.Fatal(err)
			}
			gotRaw, err := p.GetRaw(prov, d)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotRaw.Data, wantRaw.Data) {
				t.Fatalf("%s %v: raw bytes differ", prov, d)
			}
			if gotRaw.Hash != wantRaw.Hash || p.RawHash(prov, d) != store.RawHash(prov, d) {
				t.Fatalf("%s %v: hash mismatch", prov, d)
			}
		}
	}
	if n := p.Snapshots(); n != 17 {
		t.Fatalf("snapshot count %d, want 17", n)
	}
	if corrupt, err := p.Verify(); err != nil || len(corrupt) != 0 {
		t.Fatalf("verify: %v, %v", corrupt, err)
	}
}

// TestPackEncodeFallbackMatchesRaw pins the two writer paths to the
// same bytes: packing an in-memory Archive (no raw bytes — encode
// fallback) must produce slot-for-slot identical documents and hashes
// to packing the DiskStore holding the same lists.
func TestPackEncodeFallbackMatchesRaw(t *testing.T) {
	store := seedStore(t, t.TempDir())
	mem := toplist.NewArchive(store.First(), store.Last())
	for _, prov := range store.Providers() {
		for d := store.First(); d <= store.Last(); d++ {
			if l := store.Get(prov, d); l != nil {
				if err := mem.Put(prov, d, l); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	fromDisk, err := OpenFile(packStore(t, store))
	if err != nil {
		t.Fatal(err)
	}
	defer fromDisk.Close()
	memPath := filepath.Join(t.TempDir(), "mem.pack")
	if err := Write(memPath, mem); err != nil {
		t.Fatal(err)
	}
	fromMem, err := OpenFile(memPath)
	if err != nil {
		t.Fatal(err)
	}
	defer fromMem.Close()
	for _, prov := range store.Providers() {
		for d := store.First(); d <= store.Last(); d++ {
			if fromDisk.RawHash(prov, d) != fromMem.RawHash(prov, d) {
				t.Fatalf("%s %v: encode fallback produced different bytes", prov, d)
			}
		}
	}
}

// TestPackWriteRefusesCorrupt: a source slot whose stored bytes fail
// their hash must abort the pack, not be baked into it.
func TestPackWriteRefusesCorrupt(t *testing.T) {
	dir := t.TempDir()
	store := seedStore(t, dir)
	target := filepath.Join(dir, "alexa", toplist.Day(2).String()+".csv.gz")
	if err := os.WriteFile(target, []byte("rotten"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := Write(filepath.Join(t.TempDir(), "x.pack"), store)
	if !errors.Is(err, toplist.ErrCorruptSnapshot) {
		t.Fatalf("Write over a corrupt slot: %v, want ErrCorruptSnapshot", err)
	}
}

// TestOpenRejectsGarbage: non-pack bytes and truncations must fail
// cleanly with ErrNotPack.
func TestOpenRejectsGarbage(t *testing.T) {
	store := seedStore(t, t.TempDir())
	path := packStore(t, store)
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":            {},
		"short":            []byte("TL"),
		"not a pack":       bytes.Repeat([]byte{0x42}, 200),
		"truncated header": valid[:headerSize+3],
		"missing footer":   valid[:len(valid)-footerSize],
		"flipped magic":    append([]byte("XXXXXXXX"), valid[8:]...),
	}
	for name, data := range cases {
		if _, err := Open(bytes.NewReader(data), int64(len(data))); !errors.Is(err, ErrNotPack) && err == nil {
			t.Fatalf("%s: opened without error", name)
		}
	}
	// A flipped byte inside the central directory must fail the
	// footer's directory hash.
	mut := append([]byte(nil), valid...)
	mut[len(mut)-footerSize-10] ^= 0xff
	if _, err := Open(bytes.NewReader(mut), int64(len(mut))); !errors.Is(err, ErrNotPack) {
		t.Fatalf("corrupt directory: %v, want ErrNotPack", err)
	}
}

// corruptOneBlob flips a byte inside the first stored blob and returns
// the slot it belongs to.
func corruptOneBlob(t *testing.T, path string, p *Pack) (string, toplist.Day) {
	t.Helper()
	var victim slotKey
	var rec record
	found := false
	for key, r := range p.slots {
		if !found || r.Offset < rec.Offset {
			victim, rec, found = key, r, true
		}
	}
	if !found {
		t.Fatal("no slots")
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := []byte{0}
	if _, err := f.ReadAt(buf, rec.Offset+rec.Length/2); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xff
	if _, err := f.WriteAt(buf, rec.Offset+rec.Length/2); err != nil {
		t.Fatal(err)
	}
	return victim.provider, victim.day
}

// TestPackCorruptBlobIsMemoized: a blob failing its directory hash is
// refused on every read path, memoized after one read, and listed by
// Corrupt — while every other slot keeps serving.
func TestPackCorruptBlobIsMemoized(t *testing.T) {
	store := seedStore(t, t.TempDir())
	path := packStore(t, store)
	p, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	prov, day := corruptOneBlob(t, path, p)

	if got := p.Get(prov, day); got != nil {
		t.Fatalf("Get returned a list for a corrupt slot")
	}
	if _, err := p.GetRaw(prov, day); !errors.Is(err, toplist.ErrCorruptSnapshot) {
		t.Fatalf("GetRaw: %v, want ErrCorruptSnapshot", err)
	}
	corrupt, err := p.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupt) != 1 || corrupt[0].Provider != prov || corrupt[0].Day != day {
		t.Fatalf("Corrupt listing %v, want [%s %v]", corrupt, prov, day)
	}
	// Other slots unaffected.
	for _, other := range p.Providers() {
		for d := p.First(); d <= p.Last(); d++ {
			if other == prov && d == day {
				continue
			}
			if p.Has(other, d) && p.Get(other, d) == nil {
				t.Fatalf("%s %v: healthy slot refused", other, d)
			}
		}
	}
}

// TestPackThroughArchived: archived.Server serves a packed archive
// without unpacking — raw fast path bytes identical to the DiskStore's
// stored documents, persisted-hash ETags, and If-None-Match 304
// revalidation.
func TestPackThroughArchived(t *testing.T) {
	store := seedStore(t, t.TempDir())
	p, err := OpenFile(packStore(t, store))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ts := httptest.NewServer(archived.NewServer(p))
	defer ts.Close()

	wantRaw, err := store.GetRaw("alexa", 1)
	if err != nil {
		t.Fatal(err)
	}
	url := ts.URL + toplist.RemoteSnapshotPath("alexa", 1)
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !bytes.Equal(body, wantRaw.Data) {
		t.Fatalf("served bytes differ from the DiskStore document")
	}
	etag := resp.Header.Get("ETag")
	if etag != `"`+wantRaw.Hash+`"` {
		t.Fatalf("ETag %s, want persisted hash %q", etag, wantRaw.Hash)
	}

	req2, _ := http.NewRequest(http.MethodGet, url, nil)
	req2.Header.Set("Accept-Encoding", "gzip")
	req2.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	readAll(resp2)
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status %d, want 304", resp2.StatusCode)
	}
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// TestPackConcurrentReaders hammers one Pack from many goroutines
// through a deliberately tiny decode cache, so single-flight installs,
// evictions, and re-decodes all interleave; run under -race this is
// the concurrency gate for the LRU.
func TestPackConcurrentReaders(t *testing.T) {
	store := seedStore(t, t.TempDir())
	p, err := OpenFile(packStore(t, store), WithDecodeCache(2))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	providers := p.Providers()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				prov := providers[rng.Intn(len(providers))]
				day := toplist.Day(rng.Intn(6))
				l := p.Get(prov, day)
				if p.Has(prov, day) && l == nil {
					t.Errorf("%s %v: present slot read nil", prov, day)
					return
				}
				if rng.Intn(4) == 0 {
					if _, err := p.GetRaw(prov, day); err != nil {
						t.Errorf("GetRaw: %v", err)
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
}
