// Stability: reproduce the paper's §6 findings on one simulated
// archive — churn over rank, the Alexa regime change, long-term decay,
// and weekend effects (Figs. 1b–3a).
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/stats"
)

func main() {
	lab := toplists.NewLab(toplists.WithScale(toplists.TestScale()))
	study, err := lab.Study()
	if err != nil {
		log.Fatal(err)
	}
	change := study.ChangeDay()

	fmt.Println("=== churn by rank subset (mean daily change, % of subset) ===")
	sizes := []int{30, 100, 300, 1000, study.Scale.ListSize}
	fmt.Printf("%-10s", "subset")
	for _, s := range sizes {
		fmt.Printf("%8d", s)
	}
	fmt.Println()
	rows := map[string][]float64{
		"alexa-pre":  study.Analysis.ChurnByRank(toplists.Alexa, sizes, 7, change),
		"alexa-post": study.Analysis.ChurnByRank(toplists.Alexa, sizes, change+1, study.Days()),
		"umbrella":   study.Analysis.ChurnByRank(toplists.Umbrella, sizes, 7, study.Days()),
		"majestic":   study.Analysis.ChurnByRank(toplists.Majestic, sizes, 7, study.Days()),
	}
	for _, name := range []string{"alexa-pre", "alexa-post", "umbrella", "majestic"} {
		fmt.Printf("%-10s", name)
		for _, v := range rows[name] {
			fmt.Printf("%7.2f%%", 100*v)
		}
		fmt.Println()
	}

	fmt.Println("\n=== intersection with day-0 list (decay, % remaining) ===")
	for _, p := range study.Providers() {
		dec := study.Analysis.DecayFromStart(p, 0)
		last := dec[len(dec)-1]
		fmt.Printf("%-9s: after %2d days %5.1f%% of the starting list remains\n",
			p, len(dec)-1, 100*last)
	}

	fmt.Println("\n=== weekend effect (mean KS distance weekday vs weekend ranks) ===")
	for _, p := range study.Providers() {
		ds := study.Analysis.KSWeekendDistances(p, 0, 5000, false)
		base := study.Analysis.KSWeekendDistances(p, 0, 5000, true)
		fmt.Printf("%-9s: weekend %.3f vs weekday baseline %.3f\n",
			p, stats.Mean(ds), stats.Mean(base))
	}

	fmt.Printf("\nTakeaway (paper §6): a one-off list download is a lottery —\n" +
		"repeat measurements longitudinally and avoid weekend/weekday mixes.\n")
}
