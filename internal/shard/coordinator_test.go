package shard

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/providers"
)

func newGen(t *testing.T) *providers.Generator {
	t.Helper()
	g, err := providers.NewGenerator(testModel(t), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// fastRetry keeps failover tests quick: tiny backoff, few attempts.
func fastRetry() CoordinatorOption {
	return WithCoordinatorRetry(2, time.Millisecond, 5*time.Millisecond)
}

func runDays(t *testing.T, c *Coordinator, from, to int) {
	t.Helper()
	for d := from; d < to; d++ {
		if err := c.StepDay(context.Background(), d); err != nil {
			t.Fatalf("StepDay(%d): %v", d, err)
		}
	}
}

// TestCoordinatorEquivalence: a coordinator over real worker sockets
// reproduces the serial generator bit for bit, for one and several
// workers, with more shards than workers too.
func TestCoordinatorEquivalence(t *testing.T) {
	opts := testOpts()
	for _, tc := range []struct {
		name            string
		workers, shards int
	}{
		{"1worker", 1, 0},
		{"2workers", 2, 0},
		{"2workers-4shards", 2, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var urls []string
			for i := 0; i < tc.workers; i++ {
				_, srv := newTestWorker(t)
				urls = append(urls, srv.URL)
			}
			ref := newGen(t)
			dist := newGen(t)
			copts := []CoordinatorOption{fastRetry()}
			if tc.shards > 0 {
				copts = append(copts, WithShards(tc.shards))
			}
			c, err := NewCoordinator(dist, testJob(t), urls, copts...)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			days := 4
			for d := -opts.BurnInDays; d < days; d++ {
				ref.StepDay(d, 1)
				if err := c.StepDay(context.Background(), d); err != nil {
					t.Fatalf("StepDay(%d): %v", d, err)
				}
				for _, p := range ref.EnabledProviders() {
					if !providers.SameBits(ref.FrontValues(p), dist.FrontValues(p)) {
						t.Fatalf("day %d: %s diverges", d, p)
					}
				}
			}
			if c.DaysMerged() != opts.BurnInDays+days {
				t.Fatalf("merged %d days", c.DaysMerged())
			}
		})
	}
}

// TestCoordinatorReassign kills one of two workers mid-run: the dead
// worker's shard is reseeded on the survivor within the day, the
// reassignment counter moves, and the output still matches the serial
// reference bit for bit.
func TestCoordinatorReassign(t *testing.T) {
	opts := testOpts()
	_, srvA := newTestWorker(t)
	_, srvB := newTestWorker(t)

	ref := newGen(t)
	dist := newGen(t)
	c, err := NewCoordinator(dist, testJob(t), []string{srvA.URL, srvB.URL}, fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	days := 4
	killAt := 1
	for d := -opts.BurnInDays; d < days; d++ {
		if d == killAt {
			srvB.CloseClientConnections()
			srvB.Close()
		}
		ref.StepDay(d, 1)
		if err := c.StepDay(context.Background(), d); err != nil {
			t.Fatalf("StepDay(%d): %v", d, err)
		}
		for _, p := range ref.EnabledProviders() {
			if !providers.SameBits(ref.FrontValues(p), dist.FrontValues(p)) {
				t.Fatalf("day %d: %s diverges after worker kill", d, p)
			}
		}
	}
	if c.Reassigned() < 1 {
		t.Fatalf("reassigned = %d, want >= 1", c.Reassigned())
	}
}

// TestCoordinatorRetryBackoff is the injected-clock unit suite for the
// per-request retry: with jitter pinned to 0.5 (factor exactly 1.0) the
// recorded sleeps must double from the base, and the budget must end in
// a typed give-up error.
func TestCoordinatorRetryBackoff(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	g := newGen(t)
	c, err := NewCoordinator(g, testJob(t), []string{srv.URL},
		WithCoordinatorRetry(4, 10*time.Millisecond, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	c.jitter = func() float64 { return 0.5 } // factor (0.5 + 0.5) = 1.0
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}

	err = c.retry(context.Background(), func() error {
		resp, err := http.Get(srv.URL + "/x")
		if err != nil {
			return &transientErr{err}
		}
		resp.Body.Close()
		return &transientErr{errFromStatus(resp.StatusCode)}
	})
	if err == nil || !strings.Contains(err.Error(), "giving up after 4 attempts") {
		t.Fatalf("retry error: %v", err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v", slept)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (doubling from base)", i, slept[i], want[i])
		}
	}
	if got := hits.Load(); got != 4 {
		t.Fatalf("server saw %d attempts, want 4", got)
	}
}

// TestCoordinatorBackoffCap: the per-attempt delay clamps at the
// configured maximum.
func TestCoordinatorBackoffCap(t *testing.T) {
	g := newGen(t)
	c, err := NewCoordinator(g, testJob(t), []string{"http://unreachable.invalid:1"},
		WithCoordinatorRetry(5, 10*time.Millisecond, 25*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	c.jitter = func() float64 { return 0.5 }
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	fail := func() error { return &transientErr{errFromStatus(503)} }
	if err := c.retry(context.Background(), fail); err == nil {
		t.Fatal("retry succeeded against permanent failure")
	}
	// 10, 20, then clamped to 25, 25.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond, 25 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v", slept)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v", i, slept[i], want[i])
		}
	}
}

// TestCoordinatorFinalErrorNoRetry: non-transient failures (a worker's
// 4xx verdict) do not consume sleeps — they are final on first sight.
func TestCoordinatorFinalErrorNoRetry(t *testing.T) {
	g := newGen(t)
	c, err := NewCoordinator(g, testJob(t), []string{"http://unreachable.invalid:1"}, fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	var slept int
	c.sleep = func(ctx context.Context, d time.Duration) error { slept++; return nil }
	calls := 0
	err = c.retry(context.Background(), func() error {
		calls++
		return errFromStatus(400)
	})
	if err == nil || calls != 1 || slept != 0 {
		t.Fatalf("final error: err=%v calls=%d slept=%d", err, calls, slept)
	}
}

// TestCoordinatorAllWorkersDown: with every worker dead the step fails
// with a bounded error instead of hanging.
func TestCoordinatorAllWorkersDown(t *testing.T) {
	opts := testOpts()
	_, srv := newTestWorker(t)
	g := newGen(t)
	c, err := NewCoordinator(g, testJob(t), []string{srv.URL}, fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	c.jitter = func() float64 { return 0.5 }
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	runDays(t, c, -opts.BurnInDays, -opts.BurnInDays+1)
	srv.CloseClientConnections()
	srv.Close()
	if err := c.StepDay(context.Background(), -opts.BurnInDays+1); err == nil {
		t.Fatal("StepDay succeeded with every worker down")
	}
}

// TestCoordinatorOutOfOrder: day sequencing is enforced.
func TestCoordinatorOutOfOrder(t *testing.T) {
	opts := testOpts()
	_, srv := newTestWorker(t)
	g := newGen(t)
	c, err := NewCoordinator(g, testJob(t), []string{srv.URL}, fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	runDays(t, c, -opts.BurnInDays, -opts.BurnInDays+1)
	if err := c.StepDay(context.Background(), 5); err == nil {
		t.Fatal("out-of-order StepDay accepted")
	}
}

// TestCoordinatorValidation: constructor refusals.
func TestCoordinatorValidation(t *testing.T) {
	g := newGen(t)
	if _, err := NewCoordinator(g, Job{}, []string{"http://x"}); err == nil {
		t.Fatal("zero job accepted")
	}
	if _, err := NewCoordinator(g, testJob(t), nil); err == nil {
		t.Fatal("no workers accepted")
	}
}

func errFromStatus(code int) error {
	return &statusErr{code}
}

type statusErr struct{ code int }

func (e *statusErr) Error() string { return http.StatusText(e.code) }
