package domainname

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics feeds arbitrary strings through Parse; it must
// return an error or a well-formed Name, never panic.
func TestParseNeverPanics(t *testing.T) {
	f := func(raw string) bool {
		n, err := Parse(raw)
		if err != nil {
			return true
		}
		if n.FQDN == "" || len(n.Labels) == 0 {
			return false
		}
		if n.TLD != n.Labels[len(n.Labels)-1] {
			return false
		}
		return strings.HasSuffix(n.FQDN, n.PublicSuffix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestParseStructureProperty checks the structural invariants on
// generated well-formed names.
func TestParseStructureProperty(t *testing.T) {
	labels := []string{"a", "bb", "ccc", "www", "net", "shop", "x1", "d-e"}
	suffixes := []string{"com", "co.uk", "de", "blogspot.com", "ck", "localdomain"}
	f := func(a, b, c, s uint8) bool {
		parts := []string{
			labels[int(a)%len(labels)],
			labels[int(b)%len(labels)],
			labels[int(c)%len(labels)],
		}
		name := strings.Join(parts, ".") + "." + suffixes[int(s)%len(suffixes)]
		n, err := Parse(name)
		if err != nil {
			return false
		}
		// Depth + suffix labels + 1 (the SLD) == total labels when a
		// base exists.
		if n.Base == "" {
			return true
		}
		suffixLabels := strings.Count(n.PublicSuffix, ".") + 1
		return n.Depth+suffixLabels+1 == len(n.Labels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestBaseOfIdempotent: BaseOf(BaseOf(x)) == BaseOf(x).
func TestBaseOfIdempotent(t *testing.T) {
	for _, s := range []string{
		"a.b.c.example.com", "x.co.uk", "deep.w.blogspot.de",
		"printer.localdomain", "www.ck", "x.y.whatever.ck",
	} {
		b1 := BaseOf(s)
		if b2 := BaseOf(b1); b2 != b1 {
			t.Fatalf("BaseOf not idempotent: %q -> %q -> %q", s, b1, b2)
		}
	}
}
