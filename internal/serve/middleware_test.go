package serve

import (
	"bytes"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/toplist"
)

func TestRouteLabel(t *testing.T) {
	cases := []struct {
		path, want string
	}{
		{"/metrics", "/metrics"},
		{"/v1/index", "/v1/index"},
		{"/v1/zones/com.zone", "/v1/zones"},
		{"/v1/alexa/2017-06-06/top-1m.csv", "/v1/snapshot"},
		{"/v1/alexa/latest/top-1m.csv.gz", "/v1/snapshot"},
		{toplist.RemoteManifestPath(), toplist.RemoteManifestPath()},
		{toplist.RemoteDaysPath(), toplist.RemoteDaysPath()},
		{toplist.RemoteProvidersPath(), toplist.RemoteProvidersPath()},
		{toplist.RemoteAPIPrefix + "/snapshots/alexa/2017-06-06", toplist.RemoteAPIPrefix + "/snapshots"},
		{"/favicon.ico", "other"},
		{"/", "other"},
	}
	for _, tc := range cases {
		r := httptest.NewRequest("GET", tc.path, nil)
		if got := RouteLabel(r); got != tc.want {
			t.Errorf("RouteLabel(%q) = %q, want %q", tc.path, got, tc.want)
		}
	}
}

func TestInstrumentObservesRequests(t *testing.T) {
	m := NewMetrics()
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		io.WriteString(w, "nope")
	}), m.Instrument(RouteLabel))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/index", nil))

	if n := m.RequestCount("/v1/index"); n != 1 {
		t.Fatalf("RequestCount = %d, want 1", n)
	}
	text := string(m.render())
	for _, want := range []string{
		`http_requests_total{route="/v1/index",class="4xx"} 1`,
		`http_response_bytes_total{route="/v1/index"} 4`,
		`http_request_duration_seconds_count{route="/v1/index"} 1`,
		`http_request_duration_seconds_bucket{route="/v1/index",le="+Inf"} 1`,
		"http_in_flight_requests 0",
		"http_requests_shed_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

func TestMetricsHandlerAndCounter(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("toplistd_reloads_total", "Successful hot reloads.")
	c.Add(3)
	if m.Counter("toplistd_reloads_total", "dup") != c {
		t.Fatal("re-registering a counter must return the existing one")
	}
	if c.Value() != 3 {
		t.Fatalf("counter value = %d", c.Value())
	}

	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "toplistd_reloads_total 3") {
		t.Fatalf("exposition missing custom counter:\n%s", rec.Body.String())
	}
}

// TestLimitSheds pins the shedding contract with a deterministically
// blocked slot: while one request is parked in the handler, the next
// is refused with 503 + Retry-After and counted; a freed slot admits
// traffic again.
func TestLimitSheds(t *testing.T) {
	m := NewMetrics()
	entered := make(chan struct{})
	release := make(chan struct{})
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/block" {
			close(entered)
			<-release
		}
		w.WriteHeader(http.StatusOK)
	}), Limit(1, m))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/block", nil))
	}()
	<-entered

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fast", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated limiter = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if m.ShedCount() != 1 {
		t.Fatalf("ShedCount = %d, want 1", m.ShedCount())
	}

	close(release)
	wg.Wait()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fast", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("after drain = %d, want 200", rec.Code)
	}
}

func TestLimitDisabled(t *testing.T) {
	h := Limit(0, nil)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("disabled limiter must pass through, got %d", rec.Code)
	}
}

func TestRecoverConvertsPanics(t *testing.T) {
	m := NewMetrics()
	var buf bytes.Buffer
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}), Recover(log.New(&buf, "", 0), m))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/index", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", rec.Code)
	}
	if m.panics.Load() != 1 {
		t.Fatalf("panic counter = %d", m.panics.Load())
	}
	if !strings.Contains(buf.String(), "boom") {
		t.Fatalf("panic not logged: %q", buf.String())
	}
}

func TestRecoverPropagatesAbortHandler(t *testing.T) {
	h := Recover(nil, nil)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("ErrAbortHandler must propagate through Recover")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	t.Fatal("unreachable")
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "hello")
	}), AccessLog(log.New(&buf, "", 0)))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/index", nil))
	line := buf.String()
	if !strings.Contains(line, "GET /v1/index 200 5B") {
		t.Fatalf("access log line = %q", line)
	}

	// nil logger: the middleware is a structural no-op.
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := AccessLog(nil)(inner); got == nil {
		t.Fatal("nil-logger AccessLog returned nil handler")
	}
}

func TestObserveBucketsLatency(t *testing.T) {
	m := NewMetrics()
	m.Observe("/v1/index", 200, 10, 3*time.Millisecond)   // 0.005 bucket
	m.Observe("/v1/index", 200, 10, 10*time.Second)       // +Inf
	m.Observe("/v1/index", 200, 10, 100*time.Microsecond) // first bucket
	text := string(m.render())
	for _, want := range []string{
		`http_request_duration_seconds_bucket{route="/v1/index",le="0.0005"} 1`,
		`http_request_duration_seconds_bucket{route="/v1/index",le="0.005"} 2`,
		`http_request_duration_seconds_bucket{route="/v1/index",le="2.5"} 2`,
		`http_request_duration_seconds_bucket{route="/v1/index",le="+Inf"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

// TestGaugeRenderingGroupsLabelledSeries: gauges render with TYPE
// gauge, move both ways, and series sharing a base metric name (the
// per-peer labelled form the fleet daemons register) are grouped under
// a single HELP/TYPE header — the Prometheus text format requires one
// header per family.
func TestGaugeRenderingGroupsLabelledSeries(t *testing.T) {
	m := NewMetrics()
	g0 := m.Gauge(`fleet_peer_lag_days{peer="http://a:1"}`, "Days the peer trails the local archive.")
	g1 := m.Gauge(`fleet_peer_lag_days{peer="http://b:2"}`, "Days the peer trails the local archive.")
	g0.Set(3)
	g1.Add(5)
	g1.Add(-1)
	if g1.Value() != 4 {
		t.Fatalf("gauge arithmetic: %d, want 4", g1.Value())
	}
	if again := m.Gauge(`fleet_peer_lag_days{peer="http://a:1"}`, ""); again != g0 {
		t.Fatal("re-registering a gauge name did not return the existing gauge")
	}

	text := string(m.render())
	if got := strings.Count(text, "# TYPE fleet_peer_lag_days gauge"); got != 1 {
		t.Fatalf("want exactly one TYPE header for the family, got %d in:\n%s", got, text)
	}
	if got := strings.Count(text, "# HELP fleet_peer_lag_days "); got != 1 {
		t.Fatalf("want exactly one HELP header for the family, got %d in:\n%s", got, text)
	}
	for _, line := range []string{
		`fleet_peer_lag_days{peer="http://a:1"} 3`,
		`fleet_peer_lag_days{peer="http://b:2"} 4`,
	} {
		if !strings.Contains(text, line+"\n") {
			t.Fatalf("exposition missing %q:\n%s", line, text)
		}
	}
	// Unlabelled counters keep their plain rendering beside gauges.
	m.Counter("fleet_rounds_total", "Sync rounds completed.").Add(2)
	text = string(m.render())
	if !strings.Contains(text, "# TYPE fleet_rounds_total counter\nfleet_rounds_total 2\n") {
		t.Fatalf("plain counter rendering changed:\n%s", text)
	}
}
