package core

import (
	"context"

	"repro/internal/analysis"
	"repro/internal/engine"
	"repro/internal/measure"
	"repro/internal/population"
	"repro/internal/providers"
	"repro/internal/shard"
	"repro/internal/toplist"
	"repro/internal/traffic"
)

// distributedParts builds the full distributed-generation stack for a
// scale: world, model, generator options, coordinator over workerURLs,
// and an engine whose StepDay runs through it.
func distributedParts(s Scale, workerURLs []string, opts []shard.CoordinatorOption) (
	*population.World, *traffic.Model, providers.Options, *engine.Engine, *shard.Coordinator, error,
) {
	if err := s.Validate(); err != nil {
		return nil, nil, providers.Options{}, nil, nil, err
	}
	w, err := population.Build(s.Population)
	if err != nil {
		return nil, nil, providers.Options{}, nil, nil, err
	}
	m := traffic.NewModel(w)
	genOpts := providers.DefaultOptions(s.Population.Days, s.ListSize)
	genOpts.BurnInDays = s.BurnInDays
	g, err := providers.NewGenerator(m, genOpts)
	if err != nil {
		return nil, nil, providers.Options{}, nil, nil, err
	}
	coord, err := shard.NewCoordinator(g, shard.JobFor(s.Population, genOpts, m), workerURLs, opts...)
	if err != nil {
		return nil, nil, providers.Options{}, nil, nil, err
	}
	eng := engine.New(g, engine.Config{Workers: s.Workers, Remote: coord})
	return w, m, genOpts, eng, coord, nil
}

// NewDistributedEngine is NewEngine with the per-day stepping farmed
// out to shard workers at workerURLs (cmd/shardd instances): the
// returned engine drives the same rank/emit machinery, but every
// StepDay runs remotely through the returned coordinator and merges
// back bitwise-identically to a local run. Callers must Close the
// coordinator when the run ends.
func NewDistributedEngine(s Scale, workerURLs []string, opts ...shard.CoordinatorOption) (*population.World, *engine.Engine, *shard.Coordinator, error) {
	w, _, _, eng, coord, err := distributedParts(s, workerURLs, opts)
	return w, eng, coord, err
}

// RunDistributed is RunContext with generation distributed across the
// shard workers at workerURLs. The resulting Study is indistinguishable
// from a local run's — TestDistributedEquivalence pins the archives
// byte-identical — only the wall-clock location of the per-domain math
// changes.
func RunDistributed(ctx context.Context, s Scale, tee toplist.SnapshotSink, workerURLs []string, opts ...shard.CoordinatorOption) (*Study, error) {
	w, m, genOpts, eng, coord, err := distributedParts(s, workerURLs, opts)
	if err != nil {
		return nil, err
	}
	defer coord.Close()
	days := s.Population.Days
	arch := toplist.NewArchive(0, toplist.Day(days-1))
	arch.Expect(eng.Providers()...)
	if err := eng.Run(ctx, days, engine.Tee(arch, tee)); err != nil {
		return nil, err
	}
	return &Study{
		Scale:    s,
		Opts:     genOpts,
		World:    w,
		Model:    m,
		Archive:  arch,
		Analysis: analysis.NewContext(w, arch),
		Campaign: measure.NewCampaign(w),
	}, nil
}
