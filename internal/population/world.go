package population

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/domainname"
	"repro/internal/rng"
	"repro/internal/simnet"
)

// Flags is a bitmask of infrastructure capabilities.
type Flags uint16

// Capability flags.
const (
	FlagIPv6 Flags = 1 << iota
	FlagCAA
	FlagTLS
	FlagHSTS
	FlagHTTP2
	FlagCNAME
)

// Has reports whether all bits in f are set.
func (fl Flags) Has(f Flags) bool { return fl&f == f }

// Domain is one name in the synthetic universe — either a base domain
// ("site") or a subdomain FQDN attached to one.
type Domain struct {
	Name     string
	Base     string
	BaseID   uint32 // index of the base record (== own index for bases)
	Category Category
	Depth    uint8 // PSL subdomain depth of Name
	ValidTLD bool

	// Latent is the shared underlying importance of the domain; the
	// three axis popularities are correlated through it.
	Latent float64
	// Latent popularity along the three provider signal axes.
	WebPop, DNSPop, LinkPop float64
	// WeekendFactor multiplies activity on Saturdays/Sundays.
	WeekendFactor float64
	// VolMul scales the per-day activity noise for this domain.
	VolMul float64
	// Seed drives cheap per-(domain, day) noise hashing.
	Seed uint64

	// BirthDay is when the domain comes into existence (0 = from the
	// start); DeathDay is when it stops resolving (-1 = never).
	BirthDay, DeathDay int32
	// TrendBoost/TrendTau describe a newborn's temporary popularity
	// spike: activity multiplier 1+TrendBoost*exp(-(day-birth)/tau).
	TrendBoost, TrendTau float64

	// Hosting infrastructure.
	IPv4  uint32
	ASN   uint32
	CDN   uint8 // CDN registry ID, 0 = none
	TTL   uint32
	Flags Flags
}

// Exists reports whether the domain resolves on the given day.
func (d *Domain) Exists(day int) bool {
	if d.Category.NeverResolves() {
		return false
	}
	if int32(day) < d.BirthDay {
		return false
	}
	return d.DeathDay < 0 || int32(day) < d.DeathDay
}

// Born reports whether the domain has come into existence by day
// (independent of later death); unborn domains generate no traffic.
func (d *Domain) Born(day int) bool { return int32(day) >= d.BirthDay }

// World is the synthetic universe plus its infrastructure registries.
type World struct {
	Cfg     Config
	Domains []Domain
	ASes    *simnet.ASRegistry
	CDNs    *simnet.CDNRegistry
	Routes  *simnet.RouteTable

	byName map[string]uint32
	// baseIDs indexes the base-domain records.
	baseIDs []uint32
}

// platformSpec describes a user-content platform whose per-user names
// drive the paper's Fig. 3b/3c SLD weekend dynamics.
type platformSpec struct {
	suffix   string
	category Category
	users    float64 // fraction of cfg.Sites
	label    string
}

var platforms = []platformSpec{
	{"blogspot.com", CatLeisure, 0.015, "blog"},
	{"blogspot.de", CatLeisure, 0.004, "blog"},
	{"blogspot.com.br", CatLeisure, 0.004, "blog"},
	{"tumblr.com", CatLeisure, 0.012, "blog"},
	{"sharepoint.com", CatWork, 0.012, "team"},
	{"ampproject.org", CatCDNAsset, 0.008, "cdn"},
	{"nflxso.net", CatCDNAsset, 0.004, "occ"},
	{"nessus.org", CatWork, 0.003, "plugins"},
}

// Build generates the world from cfg. Generation is deterministic in
// cfg.Seed.
func Build(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	w := &World{
		Cfg:    cfg,
		ASes:   simnet.NewASRegistry(cfg.SmallASes),
		CDNs:   simnet.NewCDNRegistry(),
		byName: make(map[string]uint32),
	}
	w.Routes = simnet.NewRouteTableFromRegistry(w.ASes)

	gen := newNameGen(root.Derive("names"))
	catAlias := rng.NewAlias(root.Derive("cats"), cfg.CategoryMix[:])

	// --- Base domains -------------------------------------------------
	births := cfg.BirthsPerDay * (cfg.Days - 1)
	nBase := cfg.Sites + births
	type baseSpec struct {
		name     string
		cat      Category
		birth    int32
		platform bool
	}
	specs := make([]baseSpec, 0, nBase)
	// Platform user sites replace part of the day-0 site budget.
	platformUsers := 0
	for _, p := range platforms {
		n := int(p.users * float64(cfg.Sites))
		platformUsers += n
		for i := 0; i < n; i++ {
			name := gen.platformName(p.label, p.suffix)
			specs = append(specs, baseSpec{name: name, cat: p.category, platform: true})
		}
	}
	for i := platformUsers; i < cfg.Sites; i++ {
		cat := Category(catAlias.Next())
		var name string
		if cat == CatJunk {
			name = gen.junkName()
		} else {
			name = gen.baseDomain()
		}
		specs = append(specs, baseSpec{name: name, cat: cat})
	}
	// Newborns, spread uniformly over days 1..Days-1.
	for d := 1; d < cfg.Days; d++ {
		for i := 0; i < cfg.BirthsPerDay; i++ {
			cat := Category(catAlias.Next())
			var name string
			if cat == CatJunk {
				name = gen.junkName()
			} else {
				name = gen.baseDomain()
			}
			specs = append(specs, baseSpec{name: name, cat: cat, birth: int32(d)})
		}
	}
	nBase = len(specs)

	// Latent popularity: a random permutation assigns Zipf ranks.
	perm := root.Derive("zipf").Perm(nBase)
	popR := root.Derive("pop")
	lifeR := root.Derive("life")
	trendR := root.Derive("trend")

	w.Domains = make([]Domain, 0, nBase+nBase/2)
	for i, sp := range specs {
		g := rng.ZipfWeight(perm[i]+1, cfg.ZipfExponent)
		ax := categoryAxis[sp.cat]
		d := Domain{
			Name:          sp.name,
			Category:      sp.cat,
			BirthDay:      sp.birth,
			DeathDay:      -1,
			Latent:        g,
			WebPop:        g * ax.web * popR.LogNormal(0, cfg.AxisSigma),
			DNSPop:        g * ax.dns * popR.LogNormal(0, cfg.AxisSigma),
			LinkPop:       g * ax.link * popR.LogNormal(0, cfg.AxisSigma),
			WeekendFactor: categoryWeekend[sp.cat] * popR.LogNormal(0, 0.10),
			VolMul:        popR.Range(0.6, 1.4),
			Seed:          popR.Uint64(),
		}
		pn, err := domainname.Parse(sp.name)
		if err != nil {
			return nil, fmt.Errorf("population: generated bad name %q: %v", sp.name, err)
		}
		d.Base = pn.FQDN
		if pn.Base != "" {
			d.Base = pn.Base
		}
		d.Depth = uint8(pn.Depth)
		d.ValidTLD = pn.ValidTLD
		// Death process for day-0 real sites.
		if sp.birth == 0 && !sp.cat.NeverResolves() && lifeR.Bool(cfg.DeathFraction) {
			d.DeathDay = int32(1 + lifeR.Intn(cfg.Days-1))
		}
		// Trending newborns.
		if sp.birth > 0 && trendR.Bool(cfg.TrendingFraction) {
			u := trendR.Float64()
			targetRank := 1 + int(u*u*float64(nBase)*0.3)
			target := rng.ZipfWeight(targetRank, cfg.ZipfExponent)
			if target > g {
				d.TrendBoost = target/g - 1
			}
			d.TrendTau = trendR.Range(3, 25)
		}
		id := uint32(len(w.Domains))
		d.BaseID = id
		w.Domains = append(w.Domains, d)
		w.baseIDs = append(w.baseIDs, id)
		w.byName[d.Name] = id
	}

	// Popularity quantiles (by the shared latent; WebPop correlates) —
	// used for infrastructure attribute assignment.
	w.assignInfrastructure(root.Derive("infra"))

	// --- Subdomains ----------------------------------------------------
	w.generateSubdomains(gen, root.Derive("subs"))

	return w, nil
}

// assignInfrastructure draws attributes for every base domain from the
// adoption curves at the domain's popularity quantile, then assigns
// hosting (CDN, AS, IPv4, TTL).
func (w *World) assignInfrastructure(r *rng.Rand) {
	n := len(w.baseIDs)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := &w.Domains[w.baseIDs[order[a]]], &w.Domains[w.baseIDs[order[b]]]
		return da.Latent > db.Latent
	})
	quantile := make([]float64, n)
	for rank, idx := range order {
		quantile[idx] = float64(rank+1) / float64(n)
	}

	massASes := w.ASes.ByRole(simnet.RoleMassHosting)
	cloudASes := w.ASes.ByRole(simnet.RoleCloud)
	smallASes := w.ASes.ByRole(simnet.RoleSmall)
	// Intra-role weights: GoDaddy dominates mass hosting; Google
	// dominates tail cloud (private hosted sites).
	massW := []float64{10, 3, 2.2, 1.2, 1.2}[:len(massASes)]
	cloudW := []float64{5, 2.5, 1.5, 2, 1}[:len(cloudASes)]

	for i, bid := range w.baseIDs {
		d := &w.Domains[bid]
		q := quantile[i]
		// Head domains serve the whole population and barely shift on
		// weekends (the paper finds top domains far more stable, §6.2);
		// attenuate the weekend factor toward 1 with popularity.
		atten := (math.Log10(q+1e-9) + 5) / 5
		if atten < 0.15 {
			atten = 0.15
		}
		if atten > 1 {
			atten = 1
		}
		d.WeekendFactor = 1 + (d.WeekendFactor-1)*atten
		at := categoryAttr[d.Category]
		var fl Flags
		if r.Bool(scaled(curveIPv6.eval(q), at.ipv6)) {
			fl |= FlagIPv6
		}
		if r.Bool(scaled(curveCAA.eval(q), at.caa)) {
			fl |= FlagCAA
		}
		if r.Bool(scaled(curveTLS.eval(q), at.tls)) {
			fl |= FlagTLS
			if r.Bool(scaled(curveHSTS.eval(q), at.hsts)) {
				fl |= FlagHSTS
			}
			if r.Bool(scaled(curveH2.eval(q)/math.Max(curveTLS.eval(q), 1e-9), at.h2)) {
				fl |= FlagHTTP2
			}
		}
		if d.Category.NeverResolves() {
			fl = 0
		}
		// CDN.
		if !d.Category.NeverResolves() && r.Bool(scaled(curveCDN.eval(q), at.cdn)) {
			weights := cdnChoiceWeights(q)
			d.CDN = uint8(r.WeightedChoice(weights))
			if d.CDN != 0 {
				fl |= FlagCNAME
			}
		}
		if d.CDN == 0 && !d.Category.NeverResolves() && r.Bool(0.45) {
			fl |= FlagCNAME // non-CDN CNAME (hosting panel aliases)
		}
		d.Flags = fl
		// AS + address.
		var as *simnet.AS
		if d.CDN != 0 {
			cdn := w.CDNs.ByID(d.CDN)
			as = w.ASes.ByNumber(cdn.ASN)
		}
		if as == nil {
			mass, cloud, _ := hostingRoleWeights(q)
			u := r.Float64()
			switch {
			case u < mass:
				as = pick(r, massASes, massW)
			case u < mass+cloud:
				as = pick(r, cloudASes, cloudW)
			default:
				as = &smallASes[r.Intn(len(smallASes))]
			}
		}
		d.ASN = as.Number
		p := as.Prefixes[r.Intn(len(as.Prefixes))]
		hostBits := uint(32 - p.Bits)
		d.IPv4 = p.Addr | (uint32(r.Uint64()) & ((1 << hostBits) - 1))
		// TTL.
		d.TTL = ttlBuckets[r.WeightedChoice(ttlWeights(q))]
	}
}

func pick(r *rng.Rand, ases []simnet.AS, weights []float64) *simnet.AS {
	return &ases[r.WeightedChoice(weights)]
}

// generateSubdomains attaches FQDN records to base domains. Only the
// DNS axis sees most of them (Umbrella's depth skew, Table 2); web and
// link popularity stay concentrated on the base.
func (w *World) generateSubdomains(gen *nameGen, r *rng.Rand) {
	baseCount := len(w.baseIDs)
	// The extreme-depth OID chain (Umbrella's SDM 33) goes to the most
	// DNS-popular tracker so it reliably ranks.
	bestTracker := uint32(0)
	bestPop := -1.0
	for _, bid := range w.baseIDs {
		d := &w.Domains[bid]
		if d.Category == CatTracker && d.DNSPop > bestPop {
			bestTracker, bestPop = bid, d.DNSPop
		}
	}
	for i := 0; i < baseCount; i++ {
		bid := w.baseIDs[i]
		// NOTE: w.Domains may reallocate during append; re-take the
		// pointer each iteration and copy needed fields first.
		parent := w.Domains[bid]
		if parent.Category == CatJunk {
			continue
		}
		mean := w.Cfg.SubdomainMean
		switch parent.Category {
		case CatTracker, CatCDNAsset, CatMobile:
			mean *= 4
		case CatIoT, CatGhost:
			mean *= 2
		}
		nSub := r.Poisson(mean)
		if parent.Category == CatWeb || parent.Category == CatLeisure ||
			parent.Category == CatMedia || parent.Category == CatShopping ||
			parent.Category == CatWork {
			if r.Bool(0.5) {
				nSub++ // a www. name
			}
		}
		if nSub == 0 {
			continue
		}
		for s := 0; s < nSub; s++ {
			depth := 1
			u := r.Float64()
			switch {
			case u < 0.70:
				depth = 1
			case u < 0.90:
				depth = 2
			case u < 0.98:
				depth = 3
			default:
				depth = 4 + r.Intn(5)
			}
			var name string
			if s == 0 && depth == 1 && r.Bool(0.6) {
				name = "www." + parent.Name
				if _, dup := w.byName[name]; dup {
					name = gen.subdomainOf(parent.Name, depth)
				}
			} else {
				name = gen.subdomainOf(parent.Name, depth)
			}
			w.addSubdomain(name, bid, &parent, r)
		}
	}
	if bestPop > 0 {
		parent := w.Domains[bestTracker]
		name := gen.oidChain(parent.Name, 33)
		w.addSubdomain(name, bestTracker, &parent, r)
		if id, ok := w.byName[name]; ok {
			// Give the chain a solid share of the tracker's resolution
			// volume so it ranks the way the paper observed.
			w.Domains[id].DNSPop = parent.DNSPop * 0.5
		}
	}
}

func (w *World) addSubdomain(name string, bid uint32, parent *Domain, r *rng.Rand) {
	if _, dup := w.byName[name]; dup {
		return
	}
	pn, err := domainname.Parse(name)
	if err != nil {
		return
	}
	// Service subdomains (api., tracking beacons, mail hosts, …) often
	// serve no web content at all: zgrab-style probes fail where the
	// base domain would succeed. This is what pulls Umbrella's TLS and
	// HTTP/2 shares below the web lists' in the paper's Table 5.
	flags := parent.Flags
	if !strings.HasPrefix(name, "www.") {
		keep := 0.55
		if pn.Depth >= 2 {
			keep = 0.30
		}
		if !r.Bool(keep) {
			flags &^= FlagTLS | FlagHSTS | FlagHTTP2
		}
	}
	d := Domain{
		Name:          name,
		Base:          parent.Base,
		BaseID:        bid,
		Category:      parent.Category,
		Depth:         uint8(pn.Depth),
		ValidTLD:      pn.ValidTLD,
		WebPop:        parent.WebPop * r.Range(0.005, 0.06),
		DNSPop:        parent.DNSPop * r.Range(0.05, 0.8),
		LinkPop:       parent.LinkPop * r.Range(0.001, 0.04),
		WeekendFactor: parent.WeekendFactor,
		VolMul:        parent.VolMul * r.Range(0.8, 1.2),
		Seed:          r.Uint64(),
		BirthDay:      parent.BirthDay,
		DeathDay:      parent.DeathDay,
		IPv4:          parent.IPv4,
		ASN:           parent.ASN,
		CDN:           parent.CDN,
		TTL:           parent.TTL,
		Flags:         flags,
	}
	id := uint32(len(w.Domains))
	w.Domains = append(w.Domains, d)
	w.byName[name] = id
}

// Len reports the number of domain records (bases + subdomains).
func (w *World) Len() int { return len(w.Domains) }

// BaseCount reports the number of base records.
func (w *World) BaseCount() int { return len(w.baseIDs) }

// BaseIDs returns the base-record indexes (shared slice; do not
// modify).
func (w *World) BaseIDs() []uint32 { return w.baseIDs }

// IDByName returns the record index for a name.
func (w *World) IDByName(name string) (uint32, bool) {
	id, ok := w.byName[name]
	return id, ok
}

// ComNetOrg returns the "general population" sample: the registered
// com/net/org domains (exactly two labels — zone files list registered
// names, not platform subdomains) in existence by day, alive or dead —
// dead ones resolve NXDOMAIN, like the paper's 0.8 %. Ghost/junk names
// are not in zone files and are excluded.
func (w *World) ComNetOrg(day int) []uint32 {
	var out []uint32
	for _, bid := range w.baseIDs {
		d := &w.Domains[bid]
		if d.Category.NeverResolves() {
			continue
		}
		if !d.Born(day) {
			continue
		}
		if labelCount(d.Name) != 2 {
			continue
		}
		switch tld(d.Name) {
		case "com", "net", "org":
			out = append(out, bid)
		}
	}
	return out
}

// ZoneDomains returns the registered (two-label) domains under the
// given TLD that exist in zone-file terms by day — the raw material for
// exporting synthetic TLD zone files.
func (w *World) ZoneDomains(day int, tldName string) []string {
	var out []string
	for _, bid := range w.baseIDs {
		d := &w.Domains[bid]
		if d.Category.NeverResolves() || !d.Born(day) {
			continue
		}
		if labelCount(d.Name) != 2 || tld(d.Name) != tldName {
			continue
		}
		out = append(out, d.Name)
	}
	return out
}

func labelCount(name string) int {
	n := 1
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			n++
		}
	}
	return n
}

func tld(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}
