// Package archived serves a snapshot archive over HTTP as a
// versioned, read-only wire API — the network half of the
// toplist.Source abstraction. Anything implementing Source can be
// mounted: an in-memory toplist.Archive, a durable toplist.DiskStore,
// or a listserv.Gatekeeper view of a still-publishing collection. The
// client side is toplist.OpenRemote, which turns a served archive back
// into a Source, so analyses and experiment labs run against a remote
// archive exactly as they do against a local one.
//
// The wire protocol is defined once, in internal/toplist (the
// RemoteAPIPrefix path helpers and the RemoteManifest document); this
// package only binds it to an http.Handler:
//
//	GET /archive/v1/manifest                    RemoteManifest (JSON)
//	GET /archive/v1/days                        JSON array of ISO dates
//	GET /archive/v1/providers                   JSON array of names
//	GET /archive/v1/snapshots/{provider}/{day}  gzip-compressed CSV
//
// Snapshot documents are byte-for-byte the gzip CSV a DiskStore keeps
// on disk (same encoder, deterministic output), served with a strong
// content-hash ETag and a Last-Modified of the provider's publication
// instant, so conditional and range requests behave like a static
// mirror of the archive directory. Absent and undecodable snapshots
// are both a plain 404 — exactly the nil Source.Get already returns
// for them — which is what lets the client mirror DiskStore.Get
// semantics without a richer wire contract.
//
// cmd/toplistd mounts this API with -serve-archive; cmd/collectd can
// fill collection gaps from a peer serving it (-peer).
package archived

import (
	"bytes"
	"compress/gzip"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"repro/internal/toplist"
)

// scaler is implemented by sources that know the scale that produced
// them (toplist.DiskStore does, via its manifest); the wire manifest
// passes the name through to remote consumers.
type scaler interface {
	Scale() string
}

// Server publishes a toplist.Source over the archive wire API. It
// implements http.Handler and is safe for concurrent use.
//
// Encoded snapshot documents are cached per (provider, day) in a
// bounded LRU (WithBlobCache), keyed by the *toplist.List pointer they
// encoded: lists are immutable, so a cache hit is valid for as long as
// the source keeps returning the same list, a source that replaces a
// snapshot (a DiskStore Put repairing a corrupt slot) is re-encoded on
// the next request instead of served stale, and a long-running daemon
// serving a large archive holds at most the cache bound — not every
// blob it ever served.
type Server struct {
	src toplist.Source
	mux *http.ServeMux

	mu       sync.Mutex
	blobs    map[blobKey]*blobEntry
	order    *list.List // LRU: front = most recent; values are blobKey
	capacity int
}

type blobKey struct {
	provider string
	day      toplist.Day
}

// blobEntry is one snapshot's encode slot. The first request for a
// (provider, day) installs the entry and encodes outside the lock;
// concurrent requests for the same snapshot wait on ready instead of
// each re-running the WriteCSV+gzip pass — the server-side analog of
// DiskStore.Get's single-flight decode.
type blobEntry struct {
	list  *toplist.List // the list these bytes encode
	ready chan struct{} // closed once data/etag (or err) are final
	data  []byte
	etag  string
	err   error
	elem  *list.Element
}

// Option configures a Server.
type Option func(*Server)

// WithBlobCache bounds the encoded-snapshot LRU cache to n documents
// (default 256). Each entry holds one gzip CSV plus a reference to its
// decoded list, so the bound is what keeps a daemon serving a huge
// archive from growing to the archive's full size; size it to the
// working set remote readers actually sweep.
func WithBlobCache(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.capacity = n
		}
	}
}

// NewServer builds the handler serving src under
// toplist.RemoteAPIPrefix. Mount it at the host root (the prefix is
// part of every route), beside other handlers if desired — cmd/toplistd
// mounts it next to the provider-style publication routes.
func NewServer(src toplist.Source, opts ...Option) *Server {
	s := &Server{
		src:      src,
		mux:      http.NewServeMux(),
		blobs:    make(map[blobKey]*blobEntry),
		order:    list.New(),
		capacity: 256,
	}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("GET "+toplist.RemoteManifestPath(), s.handleManifest)
	s.mux.HandleFunc("GET "+toplist.RemoteDaysPath(), s.handleDays)
	s.mux.HandleFunc("GET "+toplist.RemoteProvidersPath(), s.handleProviders)
	s.mux.HandleFunc("GET "+toplist.RemoteAPIPrefix+"/snapshots/{provider}/{day}", s.handleSnapshot)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Manifest returns the wire manifest the server currently publishes.
// It is rebuilt per call, so a served archive that is still growing
// (ExtendTo, live publication) reports its current range. The range is
// read once, so the document is self-consistent even when an Advance
// or ExtendTo lands mid-build.
func (s *Server) Manifest() toplist.RemoteManifest {
	first, last := s.src.First(), s.src.Last()
	man := toplist.RemoteManifest{
		Version:   toplist.RemoteAPIVersion,
		FirstDay:  first.String(),
		LastDay:   last.String(),
		Days:      toplist.DayCount(first, last),
		Providers: s.src.Providers(),
	}
	if sc, ok := s.src.(scaler); ok {
		man.Scale = sc.Scale()
	}
	if man.Providers == nil {
		man.Providers = []string{}
	}
	return man
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Manifest())
}

func (s *Server) handleDays(w http.ResponseWriter, r *http.Request) {
	days := []string{}
	first, last := s.src.First(), s.src.Last()
	for d := first; d <= last; d++ {
		days = append(days, d.String())
	}
	writeJSON(w, days)
}

func (s *Server) handleProviders(w http.ResponseWriter, r *http.Request) {
	providers := s.src.Providers()
	if providers == nil {
		providers = []string{}
	}
	writeJSON(w, providers)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	provider := r.PathValue("provider")
	day, err := toplist.ParseDay(r.PathValue("day"))
	if err != nil {
		http.Error(w, "bad date: "+r.PathValue("day"), http.StatusBadRequest)
		return
	}
	list := s.src.Get(provider, day)
	if list == nil {
		// Absent and corrupt-on-the-server are deliberately the same
		// status: Source.Get is nil for both, and the client memoizes
		// the nil either way.
		http.NotFound(w, r)
		return
	}
	b, err := s.blobFor(provider, day, list)
	if err != nil {
		http.Error(w, "encode: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("ETag", b.etag)
	w.Header().Set("X-Toplist-Day", day.String())
	// Same publication instant the provider-style routes use: 00:00 UTC
	// of the day after the data day.
	published := day.Date().Add(24 * time.Hour)
	http.ServeContent(w, r, day.String()+".csv.gz", published, bytes.NewReader(b.data))
}

// blobFor returns the encoded document for l, reusing the cached
// encoding when the source still returns the same immutable list.
// Encodes are single-flight: concurrent cold requests for one snapshot
// share a single WriteCSV+gzip pass.
func (s *Server) blobFor(provider string, day toplist.Day, l *toplist.List) (*blobEntry, error) {
	key := blobKey{provider, day}
	s.mu.Lock()
	if e, ok := s.blobs[key]; ok && e.list == l {
		s.order.MoveToFront(e.elem)
		s.mu.Unlock()
		<-e.ready
		// Encode failures are not memoized; the entry was removed and
		// the next request re-encodes (it may well succeed — the list
		// is immutable but memory pressure is not).
		return e, e.err
	}
	// Install (or replace a stale entry for a since-repaired slot) and
	// encode outside the lock.
	e := &blobEntry{list: l, ready: make(chan struct{})}
	if old, ok := s.blobs[key]; ok {
		s.order.Remove(old.elem)
	}
	e.elem = s.order.PushFront(key)
	s.blobs[key] = e
	for len(s.blobs) > s.capacity {
		back := s.order.Back()
		if back == nil {
			break
		}
		evict := back.Value.(blobKey)
		s.order.Remove(back)
		delete(s.blobs, evict)
	}
	s.mu.Unlock()

	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	err := toplist.WriteCSV(zw, l)
	if cerr := zw.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		e.err = err
		s.mu.Lock()
		if cur, ok := s.blobs[key]; ok && cur == e {
			delete(s.blobs, key)
			s.order.Remove(e.elem)
		}
		s.mu.Unlock()
		close(e.ready)
		return nil, err
	}
	sum := sha256.Sum256(buf.Bytes())
	e.data, e.etag = buf.Bytes(), `"`+hex.EncodeToString(sum[:16])+`"`
	close(e.ready)
	return e, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	// The manifest governs what a client believes the archive covers;
	// a growing archive must not be pinned by intermediaries.
	w.Header().Set("Cache-Control", "no-cache")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing to do beyond dropping the conn.
		return
	}
}
