package experiments

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// Env lazily materialises the study shared by the experiment drivers.
type Env struct {
	Scale core.Scale

	once  sync.Once
	study *core.Study
	err   error
}

// NewEnv builds an environment at the given scale; the study runs on
// first use.
func NewEnv(scale core.Scale) *Env { return &Env{Scale: scale} }

// Study returns the materialised study, running the simulation once.
func (e *Env) Study() (*core.Study, error) {
	e.once.Do(func() {
		e.study, e.err = core.Run(e.Scale)
	})
	return e.study, e.err
}

// Driver regenerates one table or figure.
type Driver func(*Env) (*Result, error)

type registration struct {
	id     string
	title  string
	driver Driver
}

var registry = map[string]registration{}

func register(id, title string, driver Driver) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = registration{id: id, title: title, driver: driver}
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns the registered title for id ("" when unknown).
func Title(id string) string { return registry[id].title }

// Run executes one experiment against the environment.
func Run(e *Env, id string) (*Result, error) {
	reg, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	res, err := reg.driver(e)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = reg.id
	if res.Title == "" {
		res.Title = reg.title
	}
	return res, nil
}

// RunAll executes every experiment in ID order.
func RunAll(e *Env) ([]*Result, error) {
	var out []*Result
	for _, id := range IDs() {
		r, err := Run(e, id)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
