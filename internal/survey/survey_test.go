package survey

import "testing"

func TestCorpusShape(t *testing.T) {
	corpus := BuildCorpus()
	if len(corpus) != 687 {
		t.Fatalf("corpus size %d, want 687", len(corpus))
	}
	using := 0
	for _, p := range corpus {
		if p.UsesTopList {
			using++
			if len(p.Lists) == 0 {
				t.Fatalf("using paper %d has no list uses", p.ID)
			}
		}
	}
	if using != 69 {
		t.Fatalf("using papers %d, want 69", using)
	}
}

func TestPipelineFindsExactlyTheUsers(t *testing.T) {
	corpus := BuildCorpus()
	used, scanned, filtered := Pipeline(corpus)
	if len(used) != 69 {
		t.Fatalf("pipeline found %d users, want 69", len(used))
	}
	// The scan must have matched decoys too (false positives exist),
	// and the filter must have removed at least some of them.
	if scanned <= len(used) {
		t.Fatalf("scan found %d candidates; expected false positives beyond %d", scanned, len(used))
	}
	if filtered >= scanned {
		t.Fatal("filter removed nothing")
	}
	if filtered < len(used) {
		t.Fatal("filter dropped genuine users")
	}
}

func TestFalsePositiveRules(t *testing.T) {
	for _, tc := range []struct {
		text string
		want bool
	}{
		{"we use the alexa top 1m list", true},
		{"the amazon alexa assistant answers queries", false},
		{"alexander et al. propose a scheme", false},
		{"alexandria's library metaphor", false},
		{"umbrella sampling of free energy", false},
		{"the cisco umbrella list of domains", true},
		{"the majestic hotel testbed", false},
		{"the majestic million ranking", true},
		{"both amazon alexa devices and the alexa top list", true}, // one genuine use suffices
	} {
		if got := hasGenuineMatch(tc.text); got != tc.want {
			t.Fatalf("hasGenuineMatch(%q) = %v, want %v", tc.text, got, tc.want)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	corpus := BuildCorpus()
	used, _, _ := Pipeline(corpus)
	rows := Table1(corpus, used)
	if len(rows) != 11 { // 10 venues + total
		t.Fatalf("rows %d", len(rows))
	}
	want := map[string][6]int{ // using, Y, V, N, listDate, measDate
		"ACM IMC":         {11, 8, 2, 1, 1, 3},
		"PAM":             {4, 3, 1, 0, 0, 0},
		"TMA":             {3, 1, 1, 1, 0, 0},
		"USENIX Security": {12, 8, 4, 0, 2, 0},
		"IEEE S&P":        {5, 3, 2, 0, 1, 1},
		"ACM CCS":         {11, 4, 5, 2, 1, 1},
		"NDSS":            {3, 2, 0, 1, 0, 0},
		"ACM CoNEXT":      {4, 2, 1, 1, 0, 1},
		"ACM SIGCOMM":     {3, 3, 0, 0, 0, 0},
		"WWW":             {13, 11, 1, 1, 2, 3},
	}
	for _, r := range rows[:10] {
		w, ok := want[r.Venue]
		if !ok {
			t.Fatalf("unexpected venue %q", r.Venue)
		}
		got := [6]int{r.Using, r.Y, r.V, r.N, r.ListDate, r.MeasDate}
		if got != w {
			t.Fatalf("%s: got %v want %v", r.Venue, got, w)
		}
	}
	total := rows[10]
	if total.Total != 687 || total.Using != 69 ||
		total.Y != 45 || total.V != 17 || total.N != 7 ||
		total.ListDate != 7 || total.MeasDate != 9 {
		t.Fatalf("total row %+v", total)
	}
	// 10.0% overall usage.
	if total.UsingPercent < 10.0 || total.UsingPercent > 10.1 {
		t.Fatalf("using percent %.2f", total.UsingPercent)
	}
	// IMC is the most list-reliant venue (paper: 26.2%).
	imc := rows[0]
	for _, r := range rows[1:10] {
		if r.UsingPercent > imc.UsingPercent {
			t.Fatalf("%s (%.1f%%) exceeds IMC (%.1f%%)", r.Venue, r.UsingPercent, imc.UsingPercent)
		}
	}
}

func TestUsageCountsMatchPaper(t *testing.T) {
	corpus := BuildCorpus()
	used, _, _ := Pipeline(corpus)
	counts := UsageCounts(corpus, used)
	get := func(src, sub string) int {
		for _, c := range counts {
			if c.Source == src && c.Subset == sub {
				return c.Count
			}
		}
		return 0
	}
	for _, tc := range []struct {
		src, sub string
		want     int
	}{
		{"alexa", "1M", 29},
		{"alexa", "10k", 11},
		{"alexa", "1k", 5},
		{"alexa", "500", 8},
		{"alexa", "100", 8},
		{"alexa", "country", 2},
		{"alexa", "category", 2},
		{"umbrella", "1M", 3},
		{"umbrella", "1k", 1},
		{"majestic", "1M", 0}, // no paper used Majestic
	} {
		if got := get(tc.src, tc.sub); got != tc.want {
			t.Fatalf("%s %s: got %d want %d", tc.src, tc.sub, got, tc.want)
		}
	}
	// Total use cases: 88 (80 Alexa global + 2 country + 2 category +
	// 4 Umbrella).
	total := 0
	for _, c := range counts {
		total += c.Count
	}
	if total != 88 {
		t.Fatalf("total use cases %d, want 88", total)
	}
}

func TestReplicabilityCounts(t *testing.T) {
	corpus := BuildCorpus()
	used, _, _ := Pipeline(corpus)
	listDate, measDate, both := ReplicabilityCounts(corpus, used)
	if listDate != 7 || measDate != 9 {
		t.Fatalf("dates %d/%d, want 7/9", listDate, measDate)
	}
	// Paper: only 2 papers give both dates. Our positional assignment
	// gives both flags to the earliest using papers per venue, so the
	// overlap is the per-venue min summed = 1(IMC)+1(S&P)+1(CCS)+1(WWW)...
	// document the actual value and require at least the paper's 2.
	if both < 2 || both > listDate {
		t.Fatalf("both dates %d outside [2,%d]", both, listDate)
	}
}

func TestExclusiveAlexa(t *testing.T) {
	corpus := BuildCorpus()
	used, _, _ := Pipeline(corpus)
	n := ExclusiveAlexaCount(corpus, used)
	// Paper: 59 papers use Alexa exclusively. Our pool distribution
	// yields a nearby value; require the strong-majority shape.
	if n < 55 || n > 69 {
		t.Fatalf("exclusive-alexa count %d outside band", n)
	}
}

func TestVenues(t *testing.T) {
	vs := Venues()
	if len(vs) != 10 {
		t.Fatalf("venues %d", len(vs))
	}
	total := 0
	for _, v := range vs {
		total += v.Total
	}
	if total != 687 {
		t.Fatalf("venue paper total %d", total)
	}
}

func TestDependenceString(t *testing.T) {
	if DependenceYes.String() != "Y" || DependenceVerify.String() != "V" || DependenceNone.String() != "N" {
		t.Fatal("dependence strings")
	}
}
