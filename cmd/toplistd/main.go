// Command toplistd publishes simulated top-list snapshots over HTTP,
// the way the real providers publish their daily CSVs. It simulates
// the ecosystem at the requested scale and serves every provider's
// daily snapshot under
//
//	/v1/index
//	/v1/{provider}/latest/top-1m.csv[.gz|.zip]
//	/v1/{provider}/{date}/top-1m.csv[.gz|.zip]
//
// With -live, the daemon starts serving immediately and streams days
// out of the simulation engine as they are generated (at most one per
// -live-interval): nothing is visible at startup, each finished day is
// published the moment its snapshots exist, and a Mirror pointed at
// the daemon experiences a real longitudinal collection against a
// still-running simulation.
//
// With -archive, no simulation runs at all: the daemon reopens a
// durable archive previously saved by `toplists -save` (or any
// toplist.DiskStore producer) and serves it straight from disk. With
// -serve-pack, it serves a packed single-file archive (written by
// `toplists pack`) the same way.
//
// With -serve-archive, the daemon additionally mounts the structured
// archive wire API (internal/archived) under /archive/v1 beside the
// provider-style routes, so remote consumers can reopen the served
// archive as a toplist.Source with toplist.OpenRemote.
//
// With one or more -shard-worker URLs (shardd daemons), the per-day
// simulation stepping is farmed out across those workers over the
// /shard/v1 wire API and merged back bitwise-identically to a local
// run — including across worker deaths, whose shards are reseeded on
// the survivors mid-day. The shard_* counters and per-worker lag
// gauges land on this daemon's /metrics. Simulation modes only
// (incompatible with -archive and -serve-pack).
//
// Every mode runs on the shared serving core (internal/serve):
//
//   - /metrics exposes per-route request counts, latency histograms,
//     bytes served, an in-flight gauge, and the load-shed counter in
//     Prometheus text format.
//   - -limit bounds concurrent requests; excess load is shed with
//     503 + Retry-After instead of queueing.
//   - In -archive and -serve-pack modes the served source is held in a
//     serve.SwappableSource: SIGHUP — or, with -reload-poll, a change
//     to the archive's mtime — reopens the store and swaps it in with
//     zero dropped requests (in-flight reads finish on the old
//     generation). Reload a regrown archive or a repacked file without
//     restarting the daemon.
//   - Shutdown is graceful: SIGINT/SIGTERM stop accepting connections,
//     in-flight requests drain (bounded by a deadline), then the
//     process exits.
//
// Usage:
//
//	toplistd [-addr :8080] [-scale test|default] [-seed N] [-days N]
//	         [-workers N] [-live] [-live-interval 2s] [-archive DIR]
//	         [-serve-pack FILE] [-serve-archive] [-shard-worker URL ...]
//	         [-limit N] [-reload-poll D] [-access-log=false]
//
// Exit status: 0 on success, 2 for invocation errors (unknown flags,
// bad flag combos — usage is printed), 1 for operational failures.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/archived"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/listserv"
	"repro/internal/pack"
	"repro/internal/population"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/toplist"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "toplistd:", err)
		var ue *usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

const usage = `usage: toplistd [-addr :8080] [-scale test|default] [-seed N] [-days N]
                [-workers N] [-live] [-live-interval 2s] [-archive DIR]
                [-serve-pack FILE] [-serve-archive] [-shard-worker URL ...]
                [-limit N] [-reload-poll D] [-access-log=false]`

// usageError is an invocation mistake — unknown flags, bad flag combos
// — as opposed to an operational failure. main prints it with the
// usage synopsis and exits 2; everything else exits 1, so scripts and
// process supervisors can tell "you called it wrong" from "it ran and
// failed" (the same split cmd/toplists has).
type usageError struct {
	msg string
}

func (e *usageError) Error() string { return e.msg + "\n" + usage }

func badUsage(format string, a ...any) *usageError {
	return &usageError{msg: fmt.Sprintf(format, a...)}
}

// workerList collects repeated -shard-worker flags.
type workerList []string

func (w *workerList) String() string { return fmt.Sprint([]string(*w)) }

func (w *workerList) Set(v string) error {
	*w = append(*w, v)
	return nil
}

// config is the parsed, validated flag set.
type config struct {
	addr         string
	scale        core.Scale
	live         bool
	liveInterval time.Duration
	archiveDir   string
	servePack    string
	serveArchive bool
	shardWorkers []string
	limit        int
	reloadPoll   time.Duration
	accessLog    bool
}

// parseFlags parses and cross-validates the invocation. Every error it
// returns is a usageError.
func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("toplistd", flag.ContinueOnError)
	fs.SetOutput(io.Discard) // errors are reported through usageError
	addr := fs.String("addr", ":8080", "listen address")
	scaleName := fs.String("scale", "test", "simulation scale: test or default")
	seed := fs.Uint64("seed", 1, "root seed")
	days := fs.Int("days", 0, "override the simulated window length (days)")
	workers := fs.Int("workers", 0, "engine parallelism (0 = all cores, 1 = serial)")
	live := fs.Bool("live", false, "stream days out of the engine as they are generated")
	liveInterval := fs.Duration("live-interval", 2*time.Second, "publication pacing in -live mode")
	archiveDir := fs.String("archive", "", "serve a saved archive from this directory (no simulation)")
	servePack := fs.String("serve-pack", "", "serve a packed archive file (no simulation)")
	serveArchive := fs.Bool("serve-archive", false, "also mount the archive wire API under "+toplist.RemoteAPIPrefix)
	var shardWorkers workerList
	fs.Var(&shardWorkers, "shard-worker", "shard worker (shardd) base URL to distribute generation across (repeatable)")
	limit := fs.Int("limit", 1024, "max concurrent requests before shedding with 503 (0 = unlimited)")
	reloadPoll := fs.Duration("reload-poll", 0, "watch the served archive for changes and hot-reload (0 = SIGHUP only)")
	accessLog := fs.Bool("access-log", true, "log one line per request")
	if err := fs.Parse(args); err != nil {
		return nil, badUsage("%v", err)
	}
	if fs.NArg() > 0 {
		return nil, badUsage("unexpected argument %q", fs.Arg(0))
	}
	if *archiveDir != "" && *servePack != "" {
		return nil, badUsage("-archive and -serve-pack are mutually exclusive")
	}
	if (*archiveDir != "" || *servePack != "") && *live {
		return nil, badUsage("-live cannot serve a saved archive")
	}
	if (*archiveDir != "" || *servePack != "") && len(shardWorkers) > 0 {
		return nil, badUsage("-shard-worker distributes simulation; it cannot serve a saved archive")
	}
	if *reloadPoll < 0 {
		return nil, badUsage("-reload-poll must be >= 0")
	}
	if *reloadPoll > 0 && *archiveDir == "" && *servePack == "" {
		return nil, badUsage("-reload-poll needs -archive or -serve-pack (a simulated source has nothing to reload)")
	}
	if *limit < 0 {
		return nil, badUsage("-limit must be >= 0")
	}

	scale := core.TestScale()
	switch *scaleName {
	case "test":
	case "default":
		scale = core.DefaultScale()
	default:
		return nil, badUsage("unknown scale %q (want test or default)", *scaleName)
	}
	scale.Population.Seed = *seed
	scale.Workers = *workers
	if *days > 0 {
		scale.Population.Days = *days
	}

	return &config{
		addr:         *addr,
		scale:        scale,
		live:         *live,
		liveInterval: *liveInterval,
		archiveDir:   *archiveDir,
		servePack:    *servePack,
		serveArchive: *serveArchive,
		shardWorkers: shardWorkers,
		limit:        *limit,
		reloadPoll:   *reloadPoll,
		accessLog:    *accessLog,
	}, nil
}

// composition is the assembled serving surface: one mux behind the
// standard middleware chain, plus the lifecycle hooks the daemon runs
// (live generation, reload).
type composition struct {
	handler    http.Handler
	metrics    *serve.Metrics
	source     toplist.Source // what -serve-archive exposes
	background []func(context.Context)
	reload     func() error           // nil when the mode has nothing to reload
	stamp      func() (string, error) // fingerprint for -reload-poll
	closeFn    func() error           // releases the current backend on exit
}

func (c *composition) close() error {
	if c.closeFn != nil {
		return c.closeFn()
	}
	return nil
}

// build assembles the serving composition for cfg: source per mode,
// both route families on one mux, /metrics, and the middleware chain.
func build(ctx context.Context, cfg *config, logger *log.Logger) (*composition, error) {
	comp := &composition{metrics: serve.NewMetrics()}
	mux := http.NewServeMux()
	reloads := comp.metrics.Counter("toplistd_reloads_total", "Successful hot reloads of the served source.")

	switch {
	case cfg.archiveDir != "":
		// Serve a durable archive straight from disk — no world, no
		// engine, no resimulation. The store sits in a swappable holder
		// so a reload can reopen a regrown archive in place.
		store, err := toplist.OpenArchive(cfg.archiveDir)
		if err != nil {
			return nil, err
		}
		if missing := store.Missing(); len(missing) > 0 {
			logger.Printf("warning: archive %s has %d missing snapshots", cfg.archiveDir, len(missing))
		}
		swap := serve.NewSwappableSource(store)
		gk := listserv.NewGatekeeper(swap, store.Last())
		listserv.NewServerAt(gk, listserv.WithMux(mux))
		comp.source = swap
		comp.stamp = serve.FileStamp(filepath.Join(cfg.archiveDir, "manifest.json"))
		comp.reload = func() error {
			next, err := toplist.OpenArchive(cfg.archiveDir)
			if err != nil {
				return err
			}
			swap.Swap(next)
			gk.Advance(next.Last())
			reloads.Add(1)
			logger.Printf("archive %s reloaded: %d providers x %d days",
				cfg.archiveDir, len(next.Providers()), next.Days())
			return nil
		}
		logger.Printf("archive %s ready: %d providers x %d days (served from disk)",
			cfg.archiveDir, len(store.Providers()), store.Days())

	case cfg.servePack != "":
		// Serve a packed single-file archive: the same Source contract,
		// read lazily out of one file. A reload reopens the file (a
		// repack writes a new inode via rename) and swaps it in; the
		// old pack is left to in-flight readers and reclaimed when the
		// last reference is dropped.
		p, err := pack.OpenFile(cfg.servePack)
		if err != nil {
			return nil, err
		}
		swap := serve.NewSwappableSource(p)
		gk := listserv.NewGatekeeper(swap, p.Last())
		listserv.NewServerAt(gk, listserv.WithMux(mux))
		comp.source = swap
		comp.stamp = serve.FileStamp(cfg.servePack)
		comp.reload = func() error {
			next, err := pack.OpenFile(cfg.servePack)
			if err != nil {
				return err
			}
			swap.Swap(next)
			gk.Advance(next.Last())
			reloads.Add(1)
			logger.Printf("pack %s reloaded: %d providers x %d days, %d snapshots",
				cfg.servePack, len(next.Providers()), next.Days(), next.Snapshots())
			return nil
		}
		comp.closeFn = func() error {
			if cl, ok := swap.Load().(io.Closer); ok {
				return cl.Close()
			}
			return nil
		}
		logger.Printf("pack %s ready: %d providers x %d days, %d snapshots (served from one file, %d bytes)",
			cfg.servePack, len(p.Providers()), p.Days(), p.Snapshots(), p.Size())

	default:
		logger.Printf("building world at scale %q (seed %d)...", cfg.scale.Name, cfg.scale.Population.Seed)
		var (
			world *population.World
			eng   *engine.Engine
			err   error
		)
		if len(cfg.shardWorkers) > 0 {
			// Distributed generation: per-day stepping runs on the shard
			// workers, merged back through a coordinator whose counters
			// and per-worker lag gauges land on this daemon's /metrics.
			var coord *shard.Coordinator
			world, eng, coord, err = core.NewDistributedEngine(cfg.scale, cfg.shardWorkers,
				shard.WithCoordinatorLogger(logger),
				shard.WithCoordinatorMetrics(comp.metrics))
			if err != nil {
				return nil, err
			}
			comp.closeFn = func() error { coord.Close(); return nil }
			logger.Printf("distributing generation across %d shard workers", len(cfg.shardWorkers))
		} else {
			world, eng, err = core.NewEngine(cfg.scale)
			if err != nil {
				return nil, err
			}
		}
		simDays := cfg.scale.Population.Days
		arch := toplist.NewArchive(0, toplist.Day(simDays-1))
		arch.Expect(eng.Providers()...)

		// In live mode nothing is visible yet and days stream in as the
		// engine produces them; otherwise materialise everything first.
		gk := listserv.NewGatekeeper(arch, -1)
		if !cfg.live {
			if err := eng.Run(ctx, simDays, arch); err != nil {
				return nil, err
			}
			if missing := arch.Missing(); len(missing) > 0 {
				return nil, fmt.Errorf("engine left %d snapshots missing", len(missing))
			}
			gk.Advance(arch.Last())
			logger.Printf("archive ready: %d providers x %d days", len(arch.Providers()), arch.Days())
		} else {
			comp.background = append(comp.background, func(ctx context.Context) {
				sink := newLiveSink(ctx, gk, cfg.liveInterval, logger)
				defer sink.stop()
				if err := eng.Run(ctx, simDays, sink); err != nil && ctx.Err() == nil {
					logger.Printf("live generation failed: %v", err)
					return
				}
				logger.Printf("live generation complete: %d days published", simDays)
			})
		}
		listserv.NewServerAt(gk, listserv.WithMux(mux)).WithZones(worldZones{world})
		// The wire API sees exactly what the CSV routes see: in live
		// mode the gatekeeper's visibility frontier, otherwise the
		// fully materialised archive.
		comp.source = gk.View()
	}

	if cfg.serveArchive {
		archived.NewServer(comp.source, archived.WithMux(mux))
		logger.Printf("archive wire API mounted at %s", toplist.RemoteAPIPrefix)
	}
	mux.Handle("GET /metrics", comp.metrics.Handler())

	var accessLogger *log.Logger
	if cfg.accessLog {
		accessLogger = logger
	}
	comp.handler = serve.Chain(mux,
		comp.metrics.Instrument(serve.RouteLabel),
		serve.AccessLog(accessLogger),
		serve.Limit(cfg.limit, comp.metrics),
		serve.Recover(logger, comp.metrics),
	)
	return comp, nil
}

func run(args []string, out io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	if out == nil {
		out = io.Discard
	}
	logger := log.New(out, "", log.LstdFlags)

	ctx, stop := serve.SignalContext(context.Background())
	defer stop()

	comp, err := build(ctx, cfg, logger)
	if err != nil {
		return err
	}
	defer comp.close()

	background := comp.background
	if comp.reload != nil {
		background = append(background, serve.Reloader(cfg.reloadPoll, comp.stamp, comp.reload, logger))
	}

	daemon := &serve.Daemon{
		Addr:       cfg.addr,
		Handler:    comp.handler,
		Logger:     logger,
		Background: background,
	}
	addr, err := daemon.Listen()
	if err != nil {
		return err
	}
	logger.Printf("serving on http://%s/v1/index", addr)
	return daemon.Run(ctx)
}

// worldZones publishes the simulated world's day-0 com/net/org zone
// files — the §8 general-population source — at /v1/zones/{tld}.zone.
type worldZones struct {
	w *population.World
}

func (z worldZones) ZoneTLDs() []string { return []string{"com", "net", "org"} }

func (z worldZones) ZoneDomains(tld string) []string { return z.w.ZoneDomains(0, tld) }

// liveSink streams engine output into a served archive: snapshots go
// into the gatekeeper's archive under its lock, and each completed day
// becomes visible to HTTP readers at most once per interval. It is the
// engine.DaySink wired up by -live. It runs on the engine's emit
// stage, so blocking here on the pacing ticker does not stall the
// pipeline: the engine ranks the next day and steps the one after
// while this sink waits, and publication latency per tick is just the
// archive insert.
type liveSink struct {
	ctx    context.Context
	gk     *listserv.Gatekeeper
	ticker *time.Ticker
	logger *log.Logger
}

func newLiveSink(ctx context.Context, gk *listserv.Gatekeeper, interval time.Duration, logger *log.Logger) *liveSink {
	return &liveSink{ctx: ctx, gk: gk, ticker: time.NewTicker(interval), logger: logger}
}

func (s *liveSink) stop() { s.ticker.Stop() }

// Put stores one snapshot; the day is not yet visible.
func (s *liveSink) Put(provider string, day toplist.Day, l *toplist.List) error {
	return s.gk.Put(provider, day, l)
}

// EndDay paces publication and then makes the finished day visible.
// Cancelling the context aborts the engine run via the returned error.
func (s *liveSink) EndDay(day toplist.Day) error {
	select {
	case <-s.ctx.Done():
		return s.ctx.Err()
	case <-s.ticker.C:
	}
	s.gk.Advance(day)
	s.logger.Printf("published day %v", day)
	return nil
}
