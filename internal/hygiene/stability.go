package hygiene

import (
	"fmt"

	"repro/internal/toplist"
)

// Presence returns a filter keeping only names present on at least
// minShare of the archive's days for the provider — the paper's
// "conduct repeated, longitudinal measurements" recommendation turned
// into a membership rule. minShare of 0.5 keeps names listed at least
// half the days.
func Presence(arch toplist.Source, provider string, minShare float64) Filter {
	days := 0
	counts := make(map[string]int)
	toplist.EachDay(arch, func(d toplist.Day) {
		l := arch.Get(provider, d)
		if l == nil {
			return
		}
		days++
		for _, n := range l.Names() {
			counts[n]++
		}
	})
	need := int(minShare * float64(days))
	if need < 1 {
		need = 1
	}
	return NewFilter(fmt.Sprintf("presence-%.0f%%", 100*minShare), func(name string) bool {
		return counts[name] >= need
	})
}

// churn returns |prev \ cur| / |prev| for two same-provider snapshots.
func churn(prev, cur *toplist.List) float64 {
	if prev == nil || cur == nil || prev.Len() == 0 {
		return 0
	}
	removed := 0
	for _, n := range prev.Names() {
		if !cur.Contains(n) {
			removed++
		}
	}
	return float64(removed) / float64(prev.Len())
}

// Impact quantifies what a cleaning pipeline does to a provider's
// archive: volume dropped and day-to-day churn before/after.
type Impact struct {
	Provider   string
	MeanDrop   float64 // mean share of names removed per day
	RawChurn   float64 // mean day-to-day churn of the raw top-N
	CleanChurn float64 // mean day-to-day churn of the cleaned top-N
	Days       int
}

// StabilityImpact applies the pipeline to every day of the provider's
// archive, cutting both raw and cleaned lists to topN (0 = full list),
// and reports the churn change. Cleaning with a Presence filter is the
// combination the §9 recommendations imply.
func StabilityImpact(arch toplist.Source, provider string, p *Pipeline, topN int) Impact {
	imp := Impact{Provider: provider}
	var prevRaw, prevClean *toplist.List
	var dropSum float64
	var rawSum, cleanSum float64
	transitions := 0
	toplist.EachDay(arch, func(d toplist.Day) {
		l := arch.Get(provider, d)
		if l == nil {
			return
		}
		imp.Days++
		raw := l
		if topN > 0 {
			raw = l.Top(topN)
		}
		cleaned, rep := p.Apply(l)
		if topN > 0 {
			cleaned = cleaned.Top(topN)
		}
		dropSum += rep.DropShare()
		if prevRaw != nil {
			rawSum += churn(prevRaw, raw)
			cleanSum += churn(prevClean, cleaned)
			transitions++
		}
		prevRaw, prevClean = raw, cleaned
	})
	if imp.Days > 0 {
		imp.MeanDrop = dropSum / float64(imp.Days)
	}
	if transitions > 0 {
		imp.RawChurn = rawSum / float64(transitions)
		imp.CleanChurn = cleanSum / float64(transitions)
	}
	return imp
}
