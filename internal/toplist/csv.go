package toplist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// csvBufPool recycles the encode buffers behind WriteCSV: the bufio
// writer smoothing small line writes and the per-line scratch. A
// streaming run persists one snapshot per provider per day; without the
// pool each Put would construct both from scratch.
var csvBufPool = sync.Pool{
	New: func() any {
		return &csvEncoder{bw: bufio.NewWriterSize(nil, 1<<15)}
	},
}

type csvEncoder struct {
	bw   *bufio.Writer
	line []byte
}

// WriteCSV writes the list in the providers' publication format:
// "rank,domain" lines, rank ascending, no header — the same shape as the
// Alexa/Umbrella/Majestic CSV downloads.
func WriteCSV(w io.Writer, l *List) error {
	enc := csvBufPool.Get().(*csvEncoder)
	defer func() {
		// Drop the caller's writer on every path — error returns
		// included — so the pool never retains a reference to it.
		enc.bw.Reset(nil)
		csvBufPool.Put(enc)
	}()
	enc.bw.Reset(w)
	line := enc.line
	for i, name := range l.names {
		line = strconv.AppendInt(line[:0], int64(i+1), 10)
		line = append(line, ',')
		line = append(line, name...)
		line = append(line, '\n')
		if _, err := enc.bw.Write(line); err != nil {
			enc.line = line
			return err
		}
	}
	enc.line = line
	return enc.bw.Flush()
}

// ReadCSV parses a "rank,domain" file. Ranks must be positive, strictly
// increasing, and start at 1; blank lines are ignored.
func ReadCSV(r io.Reader) (*List, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var names []string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		comma := strings.IndexByte(line, ',')
		if comma < 0 {
			return nil, fmt.Errorf("toplist: line %d: missing comma: %q", lineNo, line)
		}
		rank, err := strconv.Atoi(line[:comma])
		if err != nil {
			return nil, fmt.Errorf("toplist: line %d: bad rank: %w", lineNo, err)
		}
		if rank != len(names)+1 {
			return nil, fmt.Errorf("toplist: line %d: rank %d out of order (want %d)", lineNo, rank, len(names)+1)
		}
		name := strings.TrimSpace(line[comma+1:])
		if name == "" {
			return nil, fmt.Errorf("toplist: line %d: empty domain", lineNo)
		}
		names = append(names, name)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(names), nil
}
