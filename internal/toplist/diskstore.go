package toplist

import (
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// manifestName is the store's metadata file inside the archive dir.
const manifestName = "manifest.json"

// snapshotExt is the per-snapshot file suffix.
const snapshotExt = ".csv.gz"

// manifestVersion is the manifest format this build writes. OpenArchive
// reads this version and manifestVersionNoHashes; any other version is
// rejected outright — a future-format archive must fail loudly instead
// of half-opening with silently dropped fields.
const manifestVersion = 2

// manifestVersionNoHashes is the previous manifest format: identical
// except that no per-snapshot content hashes were persisted. Archives
// written by it open fine; their slots serve through the decode path
// until rewritten (GetRaw returns nil without a persisted hash), and
// the first manifest flush upgrades the document in place.
const manifestVersionNoHashes = 1

// manifest is the JSON document at <dir>/manifest.json describing a
// DiskStore: what scale produced it, the day range it covers, and the
// provider set it holds (and is expected to hold).
type manifest struct {
	Version   int      `json:"version"`
	Scale     string   `json:"scale,omitempty"`
	FirstDay  string   `json:"first_day"`
	LastDay   string   `json:"last_day"`
	Providers []string `json:"providers"`          // insertion order
	Expected  []string `json:"expected,omitempty"` // providers Complete/Missing require
	// Hashes persists each stored snapshot's content hash
	// (provider → ISO date → ContentHash of the gzip document),
	// recorded at Put time. They are what lets the serving fast path
	// hand out ETags and validate raw reads without ever decoding a
	// snapshot. Slots written by a version-1 store have no entry and
	// fall back to the decode path.
	Hashes map[string]map[string]string `json:"hashes,omitempty"`
	// Timings persists observed experiment wall times (microseconds
	// by experiment ID) so a fresh process reopening the archive can
	// schedule its first pooled run longest-job-first from real data.
	Timings map[string]int64 `json:"timings_us,omitempty"`
}

// DiskStore is a durable snapshot archive: one gzip-compressed CSV per
// (provider, day) under <dir>/<provider>/<date>.csv.gz, plus a JSON
// manifest with the day range, provider order, and expected provider
// set — the paper's JOINT dataset as a directory that outlives the
// process. It implements both SnapshotSink (the engine can stream
// straight into it) and Source (analyses can serve straight from it),
// so a simulation teed to disk and a later OpenArchive of the same
// directory are interchangeable.
//
// Writes are atomic (temp file + rename) so a crashed run never leaves
// a partial snapshot visible, and writing stays O(1) in memory — a
// streaming run teeing into the store holds no snapshots. Reads are
// cached: lists are immutable, so each snapshot is decoded at most
// once per open store (the cache grows to the read working set, like
// an in-memory Archive). All methods are safe for concurrent use.
type DiskStore struct {
	dir string

	mu      sync.RWMutex
	man     manifest
	first   Day
	last    Day
	present map[string][]bool // provider -> day-index bitmap
	cache   map[storeKey]*cacheEntry
}

type storeKey struct {
	provider string
	day      Day
}

// cacheEntry is one snapshot's decode slot. The first Get for a key
// installs the entry and decodes outside the store lock; concurrent
// readers of the same key wait on ready instead of each re-decoding
// the same file. A decode failure is memoized as a final nil list, so
// a corrupt snapshot costs one read — not one per call — until a Put
// replaces it and invalidates the entry.
type cacheEntry struct {
	ready chan struct{} // closed once list is final
	list  *List         // nil after a decode failure
}

var (
	_ Store     = (*DiskStore)(nil)
	_ RawSource = (*DiskStore)(nil)
)

// CreateDiskStore initialises a new durable archive at dir spanning
// days [first, last]. dir is created if needed; it must not already
// hold a store manifest.
func CreateDiskStore(dir string, first, last Day) (*DiskStore, error) {
	if last < first {
		return nil, fmt.Errorf("toplist: disk store with last < first")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("toplist: %s already holds an archive (use OpenArchive)", dir)
	}
	ds := &DiskStore{
		dir:     dir,
		man:     manifest{Version: manifestVersion, FirstDay: first.String(), LastDay: last.String()},
		first:   first,
		last:    last,
		present: make(map[string][]bool),
		cache:   make(map[storeKey]*cacheEntry),
	}
	if err := ds.flushManifestLocked(); err != nil {
		return nil, err
	}
	return ds, nil
}

// OpenArchive opens the durable archive previously written at dir,
// ready to serve snapshots without resimulating. The present-snapshot
// set is recovered by scanning the per-provider directories, so a
// store interrupted mid-run reopens with exactly the snapshots whose
// writes completed.
func OpenArchive(dir string) (*DiskStore, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("toplist: open archive %s: %w", dir, err)
	}
	var man manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("toplist: archive %s: bad manifest: %w", dir, err)
	}
	if man.Version != manifestVersion && man.Version != manifestVersionNoHashes {
		return nil, fmt.Errorf("toplist: archive %s: manifest version %d not supported (this build reads versions %d and %d); refusing to half-open it",
			dir, man.Version, manifestVersionNoHashes, manifestVersion)
	}
	first, err := ParseDay(man.FirstDay)
	if err != nil {
		return nil, fmt.Errorf("toplist: archive %s: bad first_day: %w", dir, err)
	}
	last, err := ParseDay(man.LastDay)
	if err != nil {
		return nil, fmt.Errorf("toplist: archive %s: bad last_day: %w", dir, err)
	}
	if last < first {
		return nil, fmt.Errorf("toplist: archive %s: last %v < first %v", dir, last, first)
	}
	ds := &DiskStore{
		dir:     dir,
		man:     man,
		first:   first,
		last:    last,
		present: make(map[string][]bool),
		cache:   make(map[storeKey]*cacheEntry),
	}
	for _, p := range man.Providers {
		bitmap := make([]bool, ds.daysLocked())
		entries, err := os.ReadDir(filepath.Join(dir, p))
		if err != nil && !os.IsNotExist(err) {
			return nil, err
		}
		for _, e := range entries {
			name, ok := strings.CutSuffix(e.Name(), snapshotExt)
			if !ok {
				continue
			}
			d, err := ParseDay(name)
			if err != nil || d < first || d > last {
				continue
			}
			bitmap[int(d-first)] = true
		}
		ds.present[p] = bitmap
	}
	return ds, nil
}

// Dir returns the archive directory.
func (ds *DiskStore) Dir() string { return ds.dir }

// Scale returns the scale name recorded in the manifest ("" when the
// producer did not record one).
func (ds *DiskStore) Scale() string {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.man.Scale
}

// SetScale records the producing scale's name in the manifest.
func (ds *DiskStore) SetScale(name string) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.man.Scale = name
	return ds.flushManifestLocked()
}

// First returns the first day covered.
func (ds *DiskStore) First() Day {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.first
}

// Last returns the last day covered.
func (ds *DiskStore) Last() Day {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.last
}

// Days returns the number of days covered.
func (ds *DiskStore) Days() int {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.daysLocked()
}

func (ds *DiskStore) daysLocked() int { return int(ds.last-ds.first) + 1 }

// Providers returns provider names in insertion order.
func (ds *DiskStore) Providers() []string {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return append([]string(nil), ds.man.Providers...)
}

// ExtendTo grows the covered day range so Put accepts days up to last
// — a live collector following a still-publishing source extends its
// store as the publisher's index advances. It never shrinks the range.
func (ds *DiskStore) ExtendTo(last Day) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if last <= ds.last {
		return nil
	}
	grow := int(last - ds.last)
	for p, bitmap := range ds.present {
		ds.present[p] = append(bitmap, make([]bool, grow)...)
	}
	ds.last = last
	ds.man.LastDay = last.String()
	return ds.flushManifestLocked()
}

// Expect declares the providers the archive must contain for Complete
// to hold, recorded durably in the manifest; Missing reports gaps
// against this set. Calling it again replaces the previous
// expectation.
func (ds *DiskStore) Expect(providers ...string) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.man.Expected = append([]string(nil), providers...)
	return ds.flushManifestLocked()
}

// Expected returns the declared provider set (nil when none was
// declared).
func (ds *DiskStore) Expected() []string {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return append([]string(nil), ds.man.Expected...)
}

// Has reports whether the snapshot is already stored, without decoding
// it.
func (ds *DiskStore) Has(provider string, day Day) bool {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	if day < ds.first || day > ds.last {
		return false
	}
	bitmap, ok := ds.present[provider]
	return ok && bitmap[int(day-ds.first)]
}

func (ds *DiskStore) path(provider string, day Day) string {
	return filepath.Join(ds.dir, provider, day.String()+snapshotExt)
}

// Put stores a snapshot durably. Days outside the store range or nil
// lists are rejected, matching Archive semantics.
func (ds *DiskStore) Put(provider string, day Day, l *List) error {
	if l == nil {
		return fmt.Errorf("toplist: nil list")
	}
	return ds.store(provider, day, func(path string) (string, error) {
		return ds.writeSnapshot(path, l)
	})
}

// PutRaw stores an already-encoded snapshot document — the gzip CSV
// bytes a DiskStore keeps on disk and the wire API serves — without
// re-encoding it, the write half of the serving fast path (collectd's
// peer gap-fill copies compressed bytes straight from the wire to
// disk). The document is decoded once for validation before anything
// is written, so a corrupted transfer can never enter the store.
func (ds *DiskStore) PutRaw(provider string, day Day, data []byte) error {
	if _, err := decodeSnapshotDoc(data); err != nil {
		return fmt.Errorf("toplist: raw snapshot for %s %v does not decode: %w", provider, day, err)
	}
	return ds.store(provider, day, func(path string) (string, error) {
		return ContentHash(data), writeFileAtomic(path, data)
	})
}

// store is the shared Put/PutRaw write path: range check, provider
// registration, the write itself (which reports the content hash of
// the bytes it put on disk), presence and hash bookkeeping, and cache
// invalidation — all under the store lock.
func (ds *DiskStore) store(provider string, day Day, write func(path string) (string, error)) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if day < ds.first || day > ds.last {
		return fmt.Errorf("toplist: day %v outside archive range [%v,%v]", day, ds.first, ds.last)
	}
	if _, ok := ds.present[provider]; !ok {
		if err := os.MkdirAll(filepath.Join(ds.dir, provider), 0o755); err != nil {
			return err
		}
		ds.present[provider] = make([]bool, ds.daysLocked())
		ds.man.Providers = append(ds.man.Providers, provider)
	}
	hash, err := write(ds.path(provider, day))
	if err != nil {
		return err
	}
	ds.present[provider][int(day-ds.first)] = true
	if ds.man.Hashes == nil {
		ds.man.Hashes = make(map[string]map[string]string)
	}
	if ds.man.Hashes[provider] == nil {
		ds.man.Hashes[provider] = make(map[string]string)
	}
	ds.man.Hashes[provider][day.String()] = hash
	// Deliberately not cached: a write-through cache would make a
	// streaming run teeing into the store retain every snapshot in
	// memory — the exact materialisation streaming exists to avoid.
	// Readers pay one decode per snapshot via Get instead. The delete
	// also invalidates any memoized decode failure for this slot, so a
	// rewrite of a corrupt snapshot becomes readable again.
	delete(ds.cache, storeKey{provider, day})
	// The manifest is flushed per write because it now carries the
	// snapshot's content hash; a crash between rename and flush leaves
	// a readable slot without a hash, which simply serves through the
	// decode path until the next write lands.
	return ds.flushManifestLocked()
}

// gzipPool recycles gzip compressors across snapshot writes: a
// gzip.Writer carries ~800 KB of deflate state, and before pooling
// every Put of a streaming run constructed (and discarded) a fresh one
// per (provider, day).
var gzipPool = sync.Pool{
	New: func() any { return gzip.NewWriter(nil) },
}

// writeSnapshot writes one gzip CSV atomically (temp file + rename)
// and returns the content hash of the written document, computed by
// teeing the compressed stream through the hasher — no second read of
// what was just written.
func (ds *DiskStore) writeSnapshot(path string, l *List) (string, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	zw := gzipPool.Get().(*gzip.Writer)
	zw.Reset(io.MultiWriter(f, h))
	err = WriteCSV(zw, l)
	if zerr := zw.Close(); err == nil {
		err = zerr
	}
	zw.Reset(nil) // drop the file handle before pooling
	gzipPool.Put(zw)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp) //nolint:errcheck
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)[:16]), os.Rename(tmp, path)
}

// writeFileAtomic writes data to path via temp file + rename, the same
// crash discipline writeSnapshot and the manifest flush use.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Get returns the snapshot for provider on day, or nil if absent.
// Decoded lists are cached and decodes are single-flight: concurrent
// readers of the same uncached snapshot wait for one open+gunzip+parse
// instead of each doing their own, so repeated analysis passes over
// the same store pay the disk and gzip cost once per snapshot. Decode
// failures are memoized the same way — a corrupt snapshot is read once
// and then served as nil until a Put replaces it. Missing still
// reports a corrupt snapshot as present, so operators can spot
// corruption by comparing Get against Missing.
func (ds *DiskStore) Get(provider string, day Day) *List {
	key := storeKey{provider, day}
	ds.mu.RLock()
	if day < ds.first || day > ds.last {
		ds.mu.RUnlock()
		return nil
	}
	bitmap, ok := ds.present[provider]
	if !ok || !bitmap[int(day-ds.first)] {
		ds.mu.RUnlock()
		return nil
	}
	e := ds.cache[key]
	ds.mu.RUnlock()

	if e == nil {
		ds.mu.Lock()
		if e = ds.cache[key]; e == nil {
			// This reader won the install race: decode outside the
			// lock and publish via the entry's ready channel. A Put
			// meanwhile deletes the entry from the map; waiters on
			// this decode still complete against it, and later Gets
			// decode the replacement fresh.
			e = &cacheEntry{ready: make(chan struct{})}
			ds.cache[key] = e
			ds.mu.Unlock()
			e.list, _ = ds.readSnapshot(ds.path(provider, day))
			close(e.ready)
			return e.list
		}
		ds.mu.Unlock()
	}
	<-e.ready
	return e.list
}

func (ds *DiskStore) readSnapshot(path string) (*List, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return ReadCSV(zr)
}

// RawHash returns the content hash persisted for provider on day at
// Put time, or "" when the slot is absent or was written by a store
// that predates persisted hashes — the cheap no-I/O probe the archive
// server keys its raw-path decision, blob cache, and ETags on. It
// implements RawSource.
func (ds *DiskStore) RawHash(provider string, day Day) string {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	if day < ds.first || day > ds.last {
		return ""
	}
	bitmap, ok := ds.present[provider]
	if !ok || !bitmap[int(day-ds.first)] {
		return ""
	}
	return ds.man.Hashes[provider][day.String()]
}

// GetRaw returns the stored gzip document and persisted content hash
// for provider on day without decompressing it — the zero-copy read
// the archive server's fast path serves. It implements RawSource.
//
// (nil, nil) means there are no raw bytes to serve — the slot is
// absent, or has no persisted hash (written before hashes existed) —
// and the caller should read through Get instead. An error wrapping
// ErrCorruptSnapshot means the slot is present but must not be served:
// either a previous decode already settled it as corrupt (Get,
// Verify), or the bytes read here fail the persisted-hash check — in
// which case the failure is memoized exactly as a failed Get would be,
// so Corrupt() lists the slot and a Put over it heals the listing.
func (ds *DiskStore) GetRaw(provider string, day Day) (*RawSnapshot, error) {
	key := storeKey{provider, day}
	ds.mu.RLock()
	if day < ds.first || day > ds.last {
		ds.mu.RUnlock()
		return nil, nil
	}
	bitmap, ok := ds.present[provider]
	if !ok || !bitmap[int(day-ds.first)] {
		ds.mu.RUnlock()
		return nil, nil
	}
	hash := ds.man.Hashes[provider][day.String()]
	e := ds.cache[key]
	ds.mu.RUnlock()
	if e != nil {
		select {
		case <-e.ready:
			if e.list == nil {
				return nil, fmt.Errorf("toplist: %s %v: %w", provider, day, ErrCorruptSnapshot)
			}
		default:
			// A decode is in flight; the raw read is independent of it.
		}
	}
	if hash == "" {
		return nil, nil
	}
	data, err := os.ReadFile(ds.path(provider, day))
	if err != nil {
		return nil, err
	}
	if ContentHash(data) != hash {
		ds.memoizeCorrupt(key, hash)
		return nil, fmt.Errorf("toplist: %s %v: stored bytes do not match persisted hash: %w", provider, day, ErrCorruptSnapshot)
	}
	return &RawSnapshot{Data: data, Hash: hash}, nil
}

// memoizeCorrupt settles a slot's cache entry as a decode failure
// without reading the file again, so Corrupt() lists it and both read
// paths refuse it until a Put repairs the slot. hashWas is the
// persisted hash the verdict was reached against: if a concurrent Put
// has since replaced the slot (new hash), the verdict is stale and is
// dropped instead of poisoning the fresh write.
func (ds *DiskStore) memoizeCorrupt(key storeKey, hashWas string) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.man.Hashes[key.provider][key.day.String()] != hashWas {
		return
	}
	if _, ok := ds.cache[key]; ok {
		return
	}
	e := &cacheEntry{ready: make(chan struct{})}
	close(e.ready)
	ds.cache[key] = e
}

// Verify eagerly sweeps the whole store: every present snapshot is
// read back and checked — persisted hash first (catches bit rot and
// external modification), then a full gunzip+parse — without waiting
// for a reader to trip over it. That ordering is what makes raw
// serving safe to switch on: the sweep runs before traffic, so a slot
// that cannot decode is already refused when the first request
// arrives. Failures are memoized exactly as a failed Get would be
// (Corrupt() lists them, both read paths refuse them, a Put repairs
// them); successfully decoded lists are NOT retained, so a sweep of an
// arbitrarily large archive stays O(1) in memory instead of
// materialising the read cache. Slots already settled in the cache —
// decoded fine, or already known corrupt — are not re-read. Returns
// the resulting Corrupt() listing.
func (ds *DiskStore) Verify() []Snapshot {
	return ds.VerifyReport().Corrupt
}

// VerifyReport is what a Verify sweep found, split by how much each
// slot could be checked. A v1 store upgraded in place has no persisted
// hashes, so its slots can only be decode-checked — operators deciding
// whether raw serving is fully guarded need that count, not just the
// corruption listing.
type VerifyReport struct {
	// HashVerified counts healthy slots checked against their persisted
	// content hash (and decoded).
	HashVerified int
	// DecodeOnly counts healthy slots with no persisted hash — written
	// before hashes existed — where only the gunzip+parse check could
	// run. A rewrite (Put) upgrades them.
	DecodeOnly int
	// Corrupt lists the slots that failed either check, in Corrupt()
	// order.
	Corrupt []Snapshot
}

// VerifyReport runs the Verify sweep and reports what it could check:
// hash-verified slots, decode-only (hashless v1-upgrade) slots, and
// the corrupt listing. Verify() is this, keeping only the listing.
func (ds *DiskStore) VerifyReport() VerifyReport {
	ds.mu.RLock()
	var slots []storeKey
	hashed := make(map[storeKey]bool)
	for _, p := range ds.man.Providers {
		for i, present := range ds.present[p] {
			if present {
				key := storeKey{p, ds.first + Day(i)}
				slots = append(slots, key)
				if ds.man.Hashes[p][key.day.String()] != "" {
					hashed[key] = true
				}
			}
		}
	}
	ds.mu.RUnlock()
	for _, key := range slots {
		ds.verifySlot(key)
	}
	rep := VerifyReport{Corrupt: ds.Corrupt()}
	bad := make(map[storeKey]bool, len(rep.Corrupt))
	for _, s := range rep.Corrupt {
		bad[storeKey{s.Provider, s.Day}] = true
	}
	for _, key := range slots {
		switch {
		case bad[key]:
		case hashed[key]:
			rep.HashVerified++
		default:
			rep.DecodeOnly++
		}
	}
	return rep
}

// verifySlot checks one present snapshot and memoizes a failure; see
// Verify.
func (ds *DiskStore) verifySlot(key storeKey) {
	ds.mu.RLock()
	e := ds.cache[key]
	hash := ds.man.Hashes[key.provider][key.day.String()]
	ds.mu.RUnlock()
	if e != nil {
		select {
		case <-e.ready:
			return // settled: decoded fine, or already known corrupt
		default:
			// In flight: that decode will settle the slot itself.
			return
		}
	}
	data, err := os.ReadFile(ds.path(key.provider, key.day))
	if err != nil {
		// Present per the bitmap but unreadable — as corrupt as a file
		// that fails to decode.
		ds.memoizeCorrupt(key, hash)
		return
	}
	if hash != "" && ContentHash(data) != hash {
		ds.memoizeCorrupt(key, hash)
		return
	}
	if _, err := decodeSnapshotDoc(data); err != nil {
		ds.memoizeCorrupt(key, hash)
	}
}

// Missing returns one stub Snapshot per absent (provider, day) slot,
// with the same contract as Archive.Missing: every day of every
// inserted provider, plus every day of each expected-but-absent
// provider, ordered by provider (expected first) and day ascending.
func (ds *DiskStore) Missing() []Snapshot {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.missingLocked()
}

func (ds *DiskStore) missingLocked() []Snapshot {
	var out []Snapshot
	seen := make(map[string]bool, len(ds.man.Expected))
	scan := func(p string) {
		bitmap := ds.present[p]
		if bitmap == nil {
			for d := ds.first; d <= ds.last; d++ {
				out = append(out, Snapshot{Provider: p, Day: d})
			}
			return
		}
		for i, ok := range bitmap {
			if !ok {
				out = append(out, Snapshot{Provider: p, Day: ds.first + Day(i)})
			}
		}
	}
	for _, p := range ds.man.Expected {
		seen[p] = true
		scan(p)
	}
	for _, p := range ds.man.Providers {
		if !seen[p] {
			scan(p)
		}
	}
	return out
}

// Corrupt returns one stub Snapshot per (provider, day) whose file is
// present but whose decode failed — the memoized failures Get, GetRaw,
// and Verify have accumulated — ordered by provider (manifest order)
// and day ascending. It pairs with Missing: Missing lists what was
// never written, Corrupt lists what was written and cannot be read
// back. Only slots a read has actually probed are listed (decodes are
// lazy); Verify() sweeps the whole store eagerly and settles every
// slot up front. A Put over a corrupt slot clears its entry, so a
// re-collection pass (cmd/collectd knows how to fetch individual days)
// empties the listing as it repairs.
func (ds *DiskStore) Corrupt() []Snapshot {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	var found []storeKey
	for key, e := range ds.cache {
		select {
		case <-e.ready:
			// A settled nil decode is corruption by construction: Get
			// only installs entries for slots the presence bitmap says
			// were written.
			if e.list == nil {
				found = append(found, key)
			}
		default:
		}
	}
	return corruptSnapshots(found, ds.man.Providers)
}

// Complete reports whether the store holds every snapshot it should —
// the Archive.Complete contract over the durable manifest. The
// provider count and the gap scan are evaluated under one RLock, so a
// concurrent Put or ExtendTo can never slip between the two checks and
// make Complete report a state the store was never in.
func (ds *DiskStore) Complete() bool {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return len(ds.present) > 0 && len(ds.missingLocked()) == 0
}

// RecordTiming durably notes an observed experiment wall time in the
// manifest, keyed by experiment ID. The experiment pool calls it after
// every run, so a fresh process reopening the archive starts its first
// pooled round already calibrated (see Timings).
func (ds *DiskStore) RecordTiming(id string, d time.Duration) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.man.Timings == nil {
		ds.man.Timings = make(map[string]int64)
	}
	ds.man.Timings[id] = int64(d / time.Microsecond)
	return ds.flushManifestLocked()
}

// Timings returns the experiment wall times recorded in the manifest
// (nil when none were recorded).
func (ds *DiskStore) Timings() map[string]time.Duration {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	if len(ds.man.Timings) == 0 {
		return nil
	}
	out := make(map[string]time.Duration, len(ds.man.Timings))
	for id, us := range ds.man.Timings {
		out[id] = time.Duration(us) * time.Microsecond
	}
	return out
}

// flushManifestLocked rewrites manifest.json atomically; callers hold
// ds.mu. It always writes the current format, so the first write to a
// reopened version-1 archive upgrades its manifest in place.
func (ds *DiskStore) flushManifestLocked() error {
	ds.man.Version = manifestVersion
	raw, err := json.MarshalIndent(ds.man, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(ds.dir, manifestName), append(raw, '\n'))
}
