package toplist

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

// TestCSVRoundTripProperty: any generated list survives a
// write-then-read cycle unchanged.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed uint16, nRaw uint8) bool {
		n := int(nRaw%200) + 1
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("site-%d-%d.example.com", seed, i)
		}
		l := New(names)
		var buf bytes.Buffer
		if err := WriteCSV(&buf, l); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if got.Len() != l.Len() {
			return false
		}
		for r := 1; r <= l.Len(); r++ {
			if got.Name(r) != l.Name(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestTopRankConsistencyProperty: Top(n) preserves both order and rank
// lookups for every retained entry.
func TestTopRankConsistencyProperty(t *testing.T) {
	f := func(nRaw, cutRaw uint8) bool {
		n := int(nRaw%50) + 2
		cut := int(cutRaw)%n + 1
		names := make([]string, n)
		ids := make([]uint32, n)
		for i := range names {
			names[i] = fmt.Sprintf("d%d.net", i)
			ids[i] = uint32(i * 3)
		}
		l := NewWithIDs(names, ids)
		top := l.Top(cut)
		if top.Len() != cut {
			return false
		}
		for r := 1; r <= cut; r++ {
			if top.Name(r) != l.Name(r) || top.RankOf(top.Name(r)) != r {
				return false
			}
		}
		gotIDs := top.IDs()
		for i := 0; i < cut; i++ {
			if gotIDs[i] != ids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBaseDomainsIdempotentProperty: normalising twice equals once.
func TestBaseDomainsIdempotentProperty(t *testing.T) {
	l := New([]string{
		"www.a.com", "a.com", "b.co.uk", "x.b.co.uk", "c.de",
		"deep.sub.tree.c.de", "printer.localdomain",
	})
	once := l.BaseDomains()
	twice := once.BaseDomains()
	if once.Len() != twice.Len() {
		t.Fatalf("idempotence broken: %d vs %d", once.Len(), twice.Len())
	}
	for r := 1; r <= once.Len(); r++ {
		if once.Name(r) != twice.Name(r) {
			t.Fatalf("rank %d differs", r)
		}
	}
}
