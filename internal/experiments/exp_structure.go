package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/providers"
)

func init() {
	register("table2", "Dataset structure metrics (Table 2)", runTable2)
	register("table3", "Classification of disjunct head domains (Table 3)", runTable3)
	register("table4", "Rank variation of example domains (Table 4)", runTable4)
}

func runTable2(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Paper: "Table 2: Umbrella 28% base domains / depth up to 33 / 1347 invalid TLDs; web lists ~97% base domains; µ∆ Majestic 6k ≪ Alexa-pre 21k < Umbrella 118k ≪ Alexa-post 483k (per 1M)",
		Header: []string{
			"list", "top", "µTLD±σ", "µBD±σ", "SD1", "SD2", "SD3", "SDM",
			"DUPSLD±σ", "µ∆", "µNEW",
		},
	}
	addRow := func(row analysis.Table2Row) {
		top := "full"
		if row.Top > 0 {
			top = d(row.Top)
		}
		res.Rows = append(res.Rows, []string{
			row.Provider, top,
			meanStdCell(row.TLDMean, row.TLDStd, false),
			meanStdCell(row.BDMean, row.BDStd, false),
			pct(row.SD1), pct(row.SD2), pct(row.SD3), d(row.SDM),
			meanStdCell(row.DupMean, row.DupStd, false),
			f1(row.Delta), f1(row.New),
		})
	}
	for _, p := range st.Providers() {
		addRow(st.Analysis.Table2(p, 0))
	}
	for _, p := range st.Providers() {
		addRow(st.Analysis.Table2(p, st.Scale.HeadSize))
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"list size %d, head %d, %d days; counts scale with list size (paper: 1M/1k over 333 days)",
		st.Scale.ListSize, st.Scale.HeadSize, st.Days()))
	return res, nil
}

func runTable3(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	rows := st.Analysis.Table3(st.Providers(), st.Scale.HeadSize)
	res := &Result{
		Paper:  "Table 3: Umbrella disjuncts 20.2% blacklist / 39.4% mobile / 25.6% other-Top1M; Alexa 3.1%/1.6%/99.1%; Majestic 2.0%/3.8%/93.6%",
		Header: []string{"list", "#disjunct", "% blacklist (hpHosts)", "% mobile (Lumen)", "% other Top lists"},
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, []string{
			r.Provider, d(r.Disjunct),
			fmt.Sprintf("%.2f%%", r.BlacklistPC),
			fmt.Sprintf("%.2f%%", r.MobilePC),
			fmt.Sprintf("%.2f%%", r.OtherTopPC),
		})
	}
	return res, nil
}

func runTable4(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	L := st.Scale.ListSize
	targets := []int{1, 3, L / 100, L / 20, L / 4, (L * 4) / 5}
	rows := st.Analysis.Table4(st.Providers(), providers.Alexa, targets)
	res := &Result{
		Paper:  "Table 4: top domains (google/facebook) vary by single ranks; tail domains (mdc.edu, puresight.com) vary by 3-5x across the period",
		Header: []string{"domain", "provider", "highest", "median", "lowest", "presence"},
	}
	for _, rv := range rows {
		for _, p := range st.Providers() {
			if _, ok := rv.Highest[p]; !ok {
				res.Rows = append(res.Rows, []string{rv.Domain, p, "-", "-", "-", "0%"})
				continue
			}
			res.Rows = append(res.Rows, []string{
				rv.Domain, p,
				d(rv.Highest[p]), d(rv.Median[p]), d(rv.Lowest[p]),
				pct1(rv.Presence[p]),
			})
		}
	}
	return res, nil
}
