package experiments

import (
	"fmt"

	"repro/internal/survey"
)

func init() {
	register("table1", "Use of top lists at 2017 venues (survey)", runTable1)
}

func runTable1(*Env) (*Result, error) {
	corpus := survey.BuildCorpus()
	used, scanned, filtered := survey.Pipeline(corpus)
	rows := survey.Table1(corpus, used)

	res := &Result{
		Title:  "Use of top lists at 2017 venues (survey)",
		Paper:  "687 papers, 69 using lists (10.0%); dependence 45 Y / 17 V / 7 N; 7 list dates, 9 measurement dates",
		Header: []string{"venue", "area", "papers", "using", "%", "Y", "V", "N", "list-date", "meas-date"},
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, []string{
			r.Venue, r.Area, d(r.Total), d(r.Using),
			fmt.Sprintf("%.1f%%", r.UsingPercent),
			d(r.Y), d(r.V), d(r.N), d(r.ListDate), d(r.MeasDate),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("pipeline: %d keyword candidates -> %d after false-positive filter -> %d confirmed",
			scanned, filtered, len(used)))

	// Right panel: list subsets used.
	counts := survey.UsageCounts(corpus, used)
	res.Rows = append(res.Rows, []string{"", "", "", "", "", "", "", "", "", ""})
	res.Rows = append(res.Rows, []string{"-- list subsets used --", "", "", "", "", "", "", "", "", ""})
	for _, c := range counts {
		res.Rows = append(res.Rows, []string{
			c.Source + " " + c.Subset, "", "", d(c.Count), "", "", "", "", "", "",
		})
	}
	excl := survey.ExclusiveAlexaCount(corpus, used)
	listDate, measDate, both := survey.ReplicabilityCounts(corpus, used)
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d papers use Alexa exclusively (paper: 59); dates: %d list / %d measurement / %d both (paper: 7/9/2)",
			excl, listDate, measDate, both))
	return res, nil
}
