// Package rng provides a deterministic, splittable pseudo-random number
// generator and the distributions used throughout the simulator.
//
// All simulation components derive their randomness from a single root
// seed, so a whole study is reproducible byte-for-byte. Streams are split
// by label (see Derive) so that adding randomness consumption in one
// component does not perturb any other component.
package rng

import "math"

// splitmix64 advances a SplitMix64 state and returns the next value.
// SplitMix64 is used for seeding and for label hashing; the main generator
// is xoshiro256**.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic pseudo-random number generator
// (xoshiro256** 1.0). It is not safe for concurrent use; derive one
// generator per goroutine instead.
type Rand struct {
	s         [4]uint64
	lineage   uint64 // fingerprint of the seed, fixed at New; used by Derive
	spare     float64
	haveSpare bool
}

// New returns a generator seeded from seed via SplitMix64, as recommended
// by the xoshiro authors.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	r.lineage = splitmix64(&sm)
	sm = seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// A state of all zeros is invalid for xoshiro; SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return &r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Derive returns a new independent generator whose stream is a pure
// function of the parent's *seed lineage* and the label — it does not
// consume randomness from, nor is it affected by the consumption state of,
// the parent. Identical (parent seed, label) pairs always yield the same
// child stream.
func (r *Rand) Derive(label string) *Rand {
	h := r.lineage
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3 // FNV-1a prime
	}
	return New(h)
}

// DeriveIndexed is Derive with an integer discriminator, convenient for
// per-day or per-domain streams.
func (r *Rand) DeriveIndexed(label string, index int) *Rand {
	h := r.lineage
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
	}
	h ^= uint64(index) + 0x9e3779b97f4a7c15
	h *= 0x100000001b3
	return New(h)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit value.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Range returns a uniform value in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomises the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate (polar Box–Muller with a
// one-value cache).
func (r *Rand) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}
