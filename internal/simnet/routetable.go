package simnet

// RouteTable maps IPv4 addresses to origin AS numbers via
// longest-prefix match, substituting for the Route Views BGP snapshot
// the paper uses for its AS analysis (§8.1.2).
//
// The implementation is a binary trie on address bits, which is the
// classic LPM structure; inserts and lookups are O(32).
type RouteTable struct {
	root *trieNode
	n    int
}

type trieNode struct {
	child [2]*trieNode
	asn   uint32
	set   bool
}

// NewRouteTable builds an empty table.
func NewRouteTable() *RouteTable {
	return &RouteTable{root: &trieNode{}}
}

// NewRouteTableFromRegistry builds a table announcing every prefix of
// every AS in the registry.
func NewRouteTableFromRegistry(reg *ASRegistry) *RouteTable {
	t := NewRouteTable()
	for _, as := range reg.All() {
		for _, p := range as.Prefixes {
			t.Insert(p, as.Number)
		}
	}
	return t
}

// Insert announces prefix as originated by asn. A later insert of the
// same prefix overwrites the earlier one.
func (t *RouteTable) Insert(p Prefix, asn uint32) {
	if p.Bits < 0 || p.Bits > 32 {
		panic("simnet: invalid prefix length")
	}
	node := t.root
	for i := 0; i < p.Bits; i++ {
		bit := (p.Addr >> (31 - uint(i))) & 1
		if node.child[bit] == nil {
			node.child[bit] = &trieNode{}
		}
		node = node.child[bit]
	}
	if !node.set {
		t.n++
	}
	node.asn = asn
	node.set = true
}

// Lookup returns the origin AS of the longest matching prefix for ip,
// and whether any prefix matched.
func (t *RouteTable) Lookup(ip uint32) (asn uint32, ok bool) {
	node := t.root
	for i := 0; i < 32 && node != nil; i++ {
		if node.set {
			asn, ok = node.asn, true
		}
		bit := (ip >> (31 - uint(i))) & 1
		node = node.child[bit]
	}
	if node != nil && node.set {
		asn, ok = node.asn, true
	}
	return asn, ok
}

// Len reports the number of announced prefixes.
func (t *RouteTable) Len() int { return t.n }
