// Command fleet demonstrates the self-healing archive fleet as real
// separate processes: a seed node simulates the paper's dataset once
// and serves it over the versioned archive wire API; the program then
// re-executes itself twice as mirror nodes (the cmd/mirrord shape:
// bootstrap from a peer, serve the local archive, run sync and verify
// loops) pointed at the seed and at each other. Once the fleet has
// converged the seed is killed and a snapshot on one mirror's disk is
// corrupted behind its back — the survivors fail over, detect and heal
// the corruption from each other, and still render table5
// byte-identically to the original, with the simulation engine never
// running again.
//
// Run it with `go run ./examples/fleet`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	toplists "repro"
)

func main() {
	node := flag.String("node", "", "internal: run as a mirror node with this name")
	dir := flag.String("dir", "", "internal: mirror archive directory")
	addr := flag.String("addr", "", "internal: mirror listen address")
	peers := flag.String("peers", "", "internal: comma-separated peer URLs")
	flag.Parse()
	if *node != "" {
		runMirrorNode(*node, *dir, *addr, *peers)
		return
	}
	runFleet()
}

// runMirrorNode is the child-process role: a miniature cmd/mirrord.
// It bootstraps its archive from the first reachable peer, serves it
// over the wire API alongside /metrics, and replicates until killed.
func runMirrorNode(name, dir, addr, peerCSV string) {
	logger := log.New(os.Stderr, "["+name+"] ", log.Ltime)
	ctx := context.Background()
	peers, err := toplists.NewPeerSet(strings.Split(peerCSV, ","),
		toplists.WithPeerBackoff(200*time.Millisecond, 2*time.Second))
	if err != nil {
		logger.Fatal(err)
	}
	var store *toplists.DiskStore
	for {
		store, err = toplists.BootstrapArchive(ctx, dir, peers)
		if err == nil {
			break
		}
		logger.Printf("bootstrap: %v (retrying)", err)
		time.Sleep(200 * time.Millisecond)
	}
	metrics := toplists.NewMetrics()
	mirror := toplists.NewMirror(store, peers,
		toplists.WithMirrorLogger(logger),
		toplists.WithMirrorMetrics(metrics))

	mux := http.NewServeMux()
	mux.Handle("/", toplists.ArchiveHandler(store))
	mux.Handle("GET /metrics", metrics.Handler())
	go func() { logger.Fatal(http.ListenAndServe(addr, mux)) }()
	for _, loop := range mirror.Loops(200*time.Millisecond, 500*time.Millisecond) {
		go loop(ctx)
	}
	logger.Printf("mirror up on %s, replicating from %s", addr, peerCSV)
	select {} // until the parent kills us
}

func runFleet() {
	ctx := context.Background()
	base, err := os.MkdirTemp("", "fleet-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)

	scale := toplists.TestScale()
	scale.Population.Days = 8

	// Node A: simulate once, persist, and render the reference table.
	fmt.Println("node A: simulating the dataset and serving the seed archive...")
	dirA := filepath.Join(base, "a")
	labA := toplists.NewLab(toplists.WithScale(scale), toplists.WithArchiveDir(dirA))
	ref, err := labA.Run(ctx, "table5")
	if err != nil {
		log.Fatal(err)
	}
	srcA, err := toplists.OpenArchive(dirA)
	if err != nil {
		log.Fatal(err)
	}
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srvA := &http.Server{Handler: toplists.ArchiveHandler(srcA)}
	go srvA.Serve(lnA)
	urlA := "http://" + lnA.Addr().String()

	// Nodes B and C: separate OS processes (this binary re-executed),
	// each peered with the seed and with the other mirror.
	addrB, addrC := freeAddr(), freeAddr()
	urlB, urlC := "http://"+addrB, "http://"+addrC
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	spawn := func(name, dir, addr, peers string) *exec.Cmd {
		cmd := exec.Command(self, "-node", name, "-dir", dir, "-addr", addr, "-peers", peers)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		return cmd
	}
	fmt.Println("spawning mirror processes B and C...")
	procB := spawn("B", filepath.Join(base, "b"), addrB, urlA+","+urlC)
	defer procB.Process.Kill()
	procC := spawn("C", filepath.Join(base, "c"), addrC, urlA+","+urlB)
	defer procC.Process.Kill()

	want := waitManifestContent(urlA)
	waitFor("fleet convergence", func() bool {
		return manifestContent(urlB) == want && manifestContent(urlC) == want
	})
	fmt.Println("fleet converged: all three manifests fingerprint-identical ✔")

	// Chaos: kill the seed for good and corrupt a snapshot on B's disk.
	fmt.Println("killing node A and corrupting a snapshot on node B's disk...")
	srvA.Close()
	rotten := filepath.Join(base, "b", toplists.Alexa, srcA.First().String()+".csv.gz")
	if err := os.WriteFile(rotten, []byte("rotten bytes"), 0o644); err != nil {
		log.Fatal(err)
	}
	waitFor("node B to heal the corruption", func() bool {
		return metricValue(urlB, "fleet_corrupt_healed_total") >= 1
	})
	fmt.Println("node B's verify sweep caught the corruption and healed it from node C ✔")

	// Both survivors still serve the full dataset: rerun table5 over
	// the wire from each and compare byte for byte.
	for _, node := range []struct{ name, url string }{{"B", urlB}, {"C", urlC}} {
		src, err := toplists.OpenRemote(ctx, node.url)
		if err != nil {
			log.Fatal(err)
		}
		res, err := toplists.NewLab(toplists.WithScale(scale), toplists.WithSource(src)).Run(ctx, "table5")
		if err != nil {
			log.Fatal(err)
		}
		if res.Render() != ref.Render() {
			log.Fatalf("node %s renders a different table5", node.name)
		}
	}
	fmt.Println("both survivors render table5 byte-identically to the original ✔")
	fmt.Print("\n", ref.Render())
}

// freeAddr grabs an unused loopback port for a child process to bind.
func freeAddr() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitFor(what string, cond func() bool) {
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	log.Fatalf("timed out waiting for %s", what)
}

// manifestContent returns the archive's content fingerprint ("" while
// the node is down or still bootstrapping).
func manifestContent(baseURL string) string {
	resp, err := http.Get(baseURL + "/archive/v1/manifest")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	var m struct {
		Content string `json:"content"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&m) != nil {
		return ""
	}
	return m.Content
}

func waitManifestContent(baseURL string) string {
	var content string
	waitFor("seed manifest", func() bool {
		content = manifestContent(baseURL)
		return content != ""
	})
	return content
}

// metricValue scrapes one scalar series from a node's /metrics page
// (-1 while the node is unreachable).
func metricValue(baseURL, series string) float64 {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		return -1
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return v
			}
		}
	}
	return -1
}
