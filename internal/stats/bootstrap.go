package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Bootstrap resampling. Table 5 reports µ ± σ over daily measurement
// readings; a percentile bootstrap gives the corresponding interval
// for any statistic without normality assumptions, which is the sound
// way to decide whether a list-vs-population gap is larger than the
// sampling noise (the paper's ▲/▼/■ marking uses a σ-multiple rule;
// the bootstrap is the ablation-friendly generalisation).

// CI is a two-sided confidence interval for a statistic.
type CI struct {
	Point    float64 // statistic on the original sample
	Lo, Hi   float64 // percentile bounds
	Level    float64 // e.g. 0.95
	Resample int     // bootstrap iterations used
}

// Contains reports whether v lies inside the interval.
func (ci CI) Contains(v float64) bool { return v >= ci.Lo && v <= ci.Hi }

// String renders "point [lo, hi]".
func (ci CI) String() string {
	return fmt.Sprintf("%.4g [%.4g, %.4g]", ci.Point, ci.Lo, ci.Hi)
}

// Bootstrap computes a percentile-bootstrap CI for stat over xs, with
// n resamples at the given level (e.g. 0.95). Deterministic in seed.
// It panics on an empty sample or a silly level.
func Bootstrap(xs []float64, stat func([]float64) float64, n int, level float64, seed uint64) CI {
	if len(xs) == 0 {
		panic("stats: Bootstrap of empty sample")
	}
	if level <= 0 || level >= 1 {
		panic("stats: Bootstrap level outside (0,1)")
	}
	if n < 2 {
		n = 2
	}
	r := rng.New(seed).Derive("bootstrap")
	resample := make([]float64, len(xs))
	statvals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		for j := range resample {
			resample[j] = xs[r.Intn(len(xs))]
		}
		v := stat(resample)
		if !math.IsNaN(v) {
			statvals = append(statvals, v)
		}
	}
	ci := CI{Point: stat(xs), Level: level, Resample: n}
	if len(statvals) == 0 {
		ci.Lo, ci.Hi = math.NaN(), math.NaN()
		return ci
	}
	sort.Float64s(statvals)
	alpha := (1 - level) / 2
	ci.Lo = percentileSorted(statvals, alpha)
	ci.Hi = percentileSorted(statvals, 1-alpha)
	return ci
}

// MeanCI is Bootstrap specialised to the mean.
func MeanCI(xs []float64, n int, level float64, seed uint64) CI {
	return Bootstrap(xs, Mean, n, level, seed)
}

// DifferenceCI bootstraps the difference stat(a) - stat(b) of two
// independent samples — the primitive behind "does the list exceed
// the population significantly". The interval excluding zero is the
// significance call.
func DifferenceCI(a, b []float64, stat func([]float64) float64, n int, level float64, seed uint64) CI {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: DifferenceCI of empty sample")
	}
	if level <= 0 || level >= 1 {
		panic("stats: DifferenceCI level outside (0,1)")
	}
	if n < 2 {
		n = 2
	}
	r := rng.New(seed).Derive("bootstrap-diff")
	ra := make([]float64, len(a))
	rb := make([]float64, len(b))
	diffs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		for j := range ra {
			ra[j] = a[r.Intn(len(a))]
		}
		for j := range rb {
			rb[j] = b[r.Intn(len(b))]
		}
		d := stat(ra) - stat(rb)
		if !math.IsNaN(d) {
			diffs = append(diffs, d)
		}
	}
	ci := CI{Point: stat(a) - stat(b), Level: level, Resample: n}
	if len(diffs) == 0 {
		ci.Lo, ci.Hi = math.NaN(), math.NaN()
		return ci
	}
	sort.Float64s(diffs)
	alpha := (1 - level) / 2
	ci.Lo = percentileSorted(diffs, alpha)
	ci.Hi = percentileSorted(diffs, 1-alpha)
	return ci
}

// percentileSorted reads the p-quantile (0..1) from a sorted slice
// with linear interpolation.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
