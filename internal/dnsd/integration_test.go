package dnsd

import (
	"context"
	"testing"

	"repro/internal/population"
	"repro/internal/simnet"
)

// TestCampaignOverSockets runs a §8-style resolution campaign through
// the full socket path — stub resolver → UDP/TCP loopback → server →
// authoritative world zone — and checks that every wire answer agrees
// with the in-process substrate the experiments use. This pins the two
// measurement paths (function call vs. network) to identical results.
func TestCampaignOverSockets(t *testing.T) {
	if testing.Short() {
		t.Skip("network campaign")
	}
	w, err := population.Build(population.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	const day = 0
	zone := w.ZoneAt(day)
	s := startServer(t, zone)
	r := NewResolver(s.Addr(), WithSeed(42))

	// Sample across the whole ID space so the set spans popular sites,
	// tail sites, junk names, and domains not yet born.
	var names []string
	for i := 0; i < w.Len() && len(names) < 400; i += 1 + w.Len()/400 {
		names = append(names, w.Domains[i].Name)
	}
	names = append(names, "not-a-real-domain.invalid", "teredo.ipv6.microsoft.com")

	results, err := ResolveAll(context.Background(), r, names, 12)
	if err != nil {
		t.Fatal(err)
	}

	var nx, v6, caa, chains int
	for i, res := range results {
		want := zone.Lookup(names[i])
		if res.RCode != want.RCode {
			t.Fatalf("%s: rcode %v over wire, %v direct", names[i], res.RCode, want.RCode)
		}
		if want.RCode != simnet.RCodeNoError {
			nx++
			continue
		}
		if res.HasA != (want.A != 0) || res.AAAA != want.AAAA || res.CAA != want.CAA {
			t.Fatalf("%s: wire %+v disagrees with direct %+v", names[i], res, want)
		}
		if len(res.Chain) != len(want.Chain) {
			t.Fatalf("%s: chain %v over wire, %v direct", names[i], res.Chain, want.Chain)
		}
		if res.AAAA {
			v6++
		}
		if res.CAA {
			caa++
		}
		if len(res.Chain) > 0 {
			chains++
		}
	}
	if nx == 0 || v6 == 0 || chains == 0 {
		t.Errorf("campaign lacks diversity: nx=%d v6=%d caa=%d chains=%d", nx, v6, caa, chains)
	}
	t.Logf("campaign over %d names: nx=%d v6=%d caa=%d chains=%d, server stats %+v",
		len(results), nx, v6, caa, chains, s.Stats())
}
