package analysis

import (
	"sort"

	"repro/internal/stats"
	"repro/internal/toplist"
)

// RankVariation is one row of Table 4: a domain's highest (best),
// median, and lowest (worst) rank per provider over the archive.
// Absent days are excluded, matching the paper's presentation; Presence
// reports how often the domain was listed at all.
type RankVariation struct {
	Domain   string
	Highest  map[string]int
	Median   map[string]int
	Lowest   map[string]int
	Presence map[string]float64 // share of days listed
}

// Table4 selects example domains at the given day-0 Alexa rank targets
// (mirroring the paper's mix of top and long-tail examples) and reports
// their rank variation across all providers. Only domains present in
// every provider's day-0 list qualify, so the per-provider columns are
// comparable.
func (c *Context) Table4(providers []string, alexaProvider string, rankTargets []int) []RankVariation {
	first := c.Arch.First()
	day0 := c.Arch.Get(alexaProvider, first)
	if day0 == nil {
		return nil
	}
	// Qualify only domains present in every provider's list across the
	// period (sampled at five days) — the paper's examples are listed
	// throughout, which is what makes their rank spreads comparable.
	sampleDays := []toplist.Day{
		first,
		first + toplist.Day(c.Arch.Days()/4),
		first + toplist.Day(c.Arch.Days()/2),
		first + toplist.Day(3*c.Arch.Days()/4),
		c.Arch.Last(),
	}
	inAll := func(id uint32) bool {
		name := c.W.Domains[id].Name
		for _, p := range providers {
			for _, d := range sampleDays {
				if !c.Arch.Get(p, d).Contains(name) {
					return false
				}
			}
		}
		return true
	}
	ids := c.worldIDs(day0)
	var chosen []uint32
	for _, target := range rankTargets {
		if target < 1 {
			target = 1
		}
		if target > len(ids) {
			target = len(ids)
		}
		// Walk outward from the target rank to the nearest domain
		// present in all lists.
		found := false
		for off := 0; off < len(ids) && !found; off++ {
			for _, idx := range []int{target - 1 + off, target - 1 - off} {
				if idx < 0 || idx >= len(ids) {
					continue
				}
				id := ids[idx]
				if dup(chosen, id) {
					continue
				}
				if inAll(id) {
					chosen = append(chosen, id)
					found = true
					break
				}
			}
		}
	}

	out := make([]RankVariation, 0, len(chosen))
	for _, id := range chosen {
		name := c.W.Domains[id].Name
		rv := RankVariation{
			Domain:   name,
			Highest:  make(map[string]int),
			Median:   make(map[string]int),
			Lowest:   make(map[string]int),
			Presence: make(map[string]float64),
		}
		for _, p := range providers {
			var ranks []float64
			days := 0
			toplist.EachDay(c.Arch, func(d toplist.Day) {
				days++
				if r := c.Arch.Get(p, d).RankOf(name); r > 0 {
					ranks = append(ranks, float64(r))
				}
			})
			if len(ranks) == 0 {
				continue
			}
			sort.Float64s(ranks)
			rv.Highest[p] = int(ranks[0])
			rv.Median[p] = int(stats.Median(ranks))
			rv.Lowest[p] = int(ranks[len(ranks)-1])
			rv.Presence[p] = float64(len(ranks)) / float64(days)
		}
		out = append(out, rv)
	}
	return out
}

func dup(ids []uint32, id uint32) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
