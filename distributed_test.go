package toplists

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/shard"
	"repro/internal/toplist"
)

// distScale is a deliberately small world: the distributed acceptance
// test runs the same simulation six times (serial, pipelined, three
// worker counts, and a kill run), so each run must be cheap — the
// property under test is byte-identity, not scale.
func distScale() Scale {
	s := TestScale()
	s.Population.Days = 12
	s.Population.Sites = 3000
	s.Population.BirthsPerDay = 25
	s.Population.SmallASes = 60
	s.ListSize = 400
	s.HeadSize = 20
	s.BurnInDays = 10
	return s
}

// archiveDigest folds every snapshot of every provider and day —
// names in rank order plus the parallel compact IDs — into one hash,
// so "archives are bitwise identical" collapses to one string compare.
func archiveDigest(t *testing.T, src Source) string {
	t.Helper()
	h := sha256.New()
	for _, p := range src.Providers() {
		for d := src.First(); d <= src.Last(); d++ {
			l := src.Get(p, d)
			if l == nil {
				t.Fatalf("missing snapshot %s day %d", p, d)
			}
			fmt.Fprintf(h, "%s/%d\n", p, d)
			ids := l.IDs()
			for i, n := range l.Names() {
				fmt.Fprintf(h, "%s,", n)
				if ids != nil {
					binary.Write(h, binary.LittleEndian, ids[i]) //nolint:errcheck
				}
			}
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// startShardWorkers boots n shard workers behind real HTTP sockets.
func startShardWorkers(t *testing.T, n int) ([]string, []*httptest.Server) {
	t.Helper()
	urls := make([]string, n)
	srvs := make([]*httptest.Server, n)
	for i := range urls {
		mux := http.NewServeMux()
		shard.NewWorker().Mount(mux)
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
		srvs[i] = srv
	}
	return urls, srvs
}

// TestDistributedEquivalence pins the determinism contract of the
// distributed generation path: the archive produced with per-day
// stepping farmed out to remote shard workers over real HTTP sockets
// is bitwise identical to the in-process serial reference, for any
// worker count — worker topology is a wall-clock knob, never a results
// knob (mirroring the engine's own Workers contract).
func TestDistributedEquivalence(t *testing.T) {
	scale := distScale()
	ctx := context.Background()

	serial, err := Simulate(ctx, WithScale(scale), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want := archiveDigest(t, serial.Archive)

	t.Run("pipelined", func(t *testing.T) {
		study, err := Simulate(ctx, WithScale(scale), WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		if got := archiveDigest(t, study.Archive); got != want {
			t.Fatalf("pipelined archive differs from serial reference\n got %s\nwant %s", got, want)
		}
	})

	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("distributed-%dworkers", workers), func(t *testing.T) {
			urls, _ := startShardWorkers(t, workers)
			study, err := Simulate(ctx, WithScale(scale), WithRemoteWorkers(urls...))
			if err != nil {
				t.Fatal(err)
			}
			if got := archiveDigest(t, study.Archive); got != want {
				t.Fatalf("distributed(%d) archive differs from serial reference\n got %s\nwant %s", workers, got, want)
			}
		})
	}
}

// killSink closes a worker server at a fixed day boundary — the
// mid-run worker death TestDistributedKillReassign injects. Closing
// both the listener and every client connection makes the next request
// to that worker fail fast instead of hanging.
type killSink struct {
	day  toplist.Day
	srv  *httptest.Server
	once sync.Once
}

func (k *killSink) Put(string, toplist.Day, *toplist.List) error { return nil }

func (k *killSink) EndDay(d toplist.Day) error {
	if d >= k.day {
		k.once.Do(func() {
			k.srv.CloseClientConnections()
			k.srv.Close()
		})
	}
	return nil
}

// TestDistributedKillReassign kills one of two workers partway through
// a distributed run: the coordinator must reseed the dead worker's
// shard on the survivor (the reassignment counter moves) and the final
// archive must still match the serial reference bit for bit.
func TestDistributedKillReassign(t *testing.T) {
	scale := distScale()
	ctx := context.Background()

	serial, err := Simulate(ctx, WithScale(scale), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want := archiveDigest(t, serial.Archive)

	urls, srvs := startShardWorkers(t, 2)
	_, eng, coord, err := core.NewDistributedEngine(scale, urls,
		shard.WithCoordinatorRetry(2, time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	days := scale.Population.Days
	arch := toplist.NewArchive(0, toplist.Day(days-1))
	arch.Expect(eng.Providers()...)
	killer := &killSink{day: 3, srv: srvs[1]}
	if err := eng.Run(ctx, days, engine.Tee(arch, killer)); err != nil {
		t.Fatal(err)
	}
	if coord.Reassigned() < 1 {
		t.Fatalf("reassigned = %d, want >= 1 (worker kill never reassigned a shard)", coord.Reassigned())
	}
	if got := archiveDigest(t, arch); got != want {
		t.Fatalf("archive differs from serial reference after worker kill\n got %s\nwant %s", got, want)
	}
}
