// Command dnsprobe demonstrates the live-measurement path of the
// reproduction: it simulates the top-list ecosystem, serves the
// simulated authoritative DNS over real UDP/TCP loopback sockets, and
// then runs a §8-style record-type campaign (NXDOMAIN / IPv6 / CAA)
// against the Alexa-style head and full list by actually resolving
// every name over the network — the way the paper's measurements ran
// against live DNS.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/dnsd"
	"repro/internal/simnet"
	"repro/internal/toplist"

	toplists "repro"
)

func main() {
	study, err := toplists.Simulate(context.Background(),
		toplists.WithScale(toplists.TestScale()))
	if err != nil {
		log.Fatal(err)
	}
	day := study.Archive.Last()

	srv, err := dnsd.Listen(study.World.ZoneAt(int(day)), "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("authoritative DNS for the simulated world on %s (UDP+TCP)\n\n", srv.Addr())

	resolver := dnsd.NewResolver(srv.Addr(), dnsd.WithTimeout(3*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	fmt.Printf("%-10s %8s %10s %8s %8s\n", "list", "names", "NXDOMAIN", "IPv6", "CAA")
	for _, provider := range []string{toplists.Alexa, toplists.Umbrella, toplists.Majestic} {
		list := study.Archive.Get(provider, day)
		probeList(ctx, resolver, provider, list.Top(200))
	}

	st := srv.Stats()
	fmt.Printf("\nserver handled %d UDP and %d TCP queries (%d truncated)\n",
		st.UDPQueries, st.TCPQueries, st.Truncated)
}

func probeList(ctx context.Context, r *dnsd.Resolver, provider string, list *toplist.List) {
	names := list.Names()
	results, err := dnsd.ResolveAll(ctx, r, names, 16)
	if err != nil {
		log.Fatalf("%s campaign: %v", provider, err)
	}
	var nx, v6, caa int
	for _, res := range results {
		switch {
		case res.RCode == simnet.RCodeNXDomain:
			nx++
		case res.RCode == simnet.RCodeNoError:
			if res.AAAA {
				v6++
			}
			if res.CAA {
				caa++
			}
		}
	}
	n := float64(len(results))
	fmt.Printf("%-10s %8d %9.1f%% %7.1f%% %7.1f%%\n",
		provider, len(results), 100*float64(nx)/n, 100*float64(v6)/n, 100*float64(caa)/n)
}
