// Bias: reproduce the paper's §8 result-impact experiment — measure
// protocol adoption (TLS, IPv6, CAA, HTTP/2) over each top list and
// over the general com/net/org population, and show how much a
// list-based study would overestimate.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/measure"
)

func main() {
	lab := toplists.NewLab(toplists.WithScale(toplists.TestScale()))
	study, err := lab.Study()
	if err != nil {
		log.Fatal(err)
	}
	day := study.Days() - 2

	pop := study.Campaign.Measure(study.PopulationNames(day), day)
	fmt.Printf("general population (com/net/org, %d domains):\n", pop.N)
	fmt.Printf("  TLS %.1f%%  IPv6 %.1f%%  CAA %.2f%%  HTTP/2 %.1f%%  NXDOMAIN %.2f%%\n\n",
		100*pop.TLS, 100*pop.IPv6, 100*pop.CAA, 100*pop.HTTP2, 100*pop.NXDOMAIN)

	fmt.Printf("%-22s %8s %8s %8s %8s %9s\n", "sample", "TLS", "IPv6", "CAA", "HTTP/2", "NXDOMAIN")
	for _, head := range []bool{true, false} {
		for _, p := range study.Providers() {
			m := study.Campaign.Measure(study.ListNames(p, day, head), day)
			label := p + " full"
			if head {
				label = fmt.Sprintf("%s head(%d)", p, study.Scale.HeadSize)
			}
			fmt.Printf("%-22s %7.1f%% %7.1f%% %7.2f%% %7.1f%% %8.2f%%\n",
				label, 100*m.TLS, 100*m.IPv6, 100*m.CAA, 100*m.HTTP2, 100*m.NXDOMAIN)
		}
	}

	// The paper's significance rule applied to one cell.
	alexa := study.Campaign.Measure(study.ListNames(toplists.Alexa, day, false), day)
	mark := measure.Classify(alexa.TLS, pop.TLS, 0)
	fmt.Printf("\nAlexa full-list TLS vs population: %.1f%% vs %.1f%% -> %s\n",
		100*alexa.TLS, 100*pop.TLS, mark)
	fmt.Println("\nTakeaway (paper §8): quantitative insights from top-list domains")
	fmt.Println("do not generalise to the Internet at large; the head of a list can")
	fmt.Println("exaggerate adoption by orders of magnitude.")
}
