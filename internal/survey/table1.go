package survey

import "sort"

// Table1Row is one venue row of the survey table.
type Table1Row struct {
	Venue, Area        string
	Total, Using       int
	UsingPercent       float64
	Y, V, N            int
	ListDate, MeasDate int
}

// Table1 aggregates the surveyed usage into the paper's Table 1 left
// panel, given the IDs the pipeline confirmed. The final row is the
// total.
func Table1(corpus []Paper, used []int) []Table1Row {
	inUse := make(map[int]bool, len(used))
	for _, id := range used {
		inUse[id] = true
	}
	byVenue := make(map[string]*Table1Row)
	var order []string
	for _, v := range venueData {
		r := &Table1Row{Venue: v.Venue.Name, Area: v.Venue.Area, Total: v.Venue.Total}
		byVenue[v.Venue.Name] = r
		order = append(order, v.Venue.Name)
	}
	for _, p := range corpus {
		r := byVenue[p.Venue]
		if r == nil || !inUse[p.ID] {
			continue
		}
		r.Using++
		switch p.Dependence {
		case DependenceYes:
			r.Y++
		case DependenceVerify:
			r.V++
		default:
			r.N++
		}
		if p.ListDateGiven {
			r.ListDate++
		}
		if p.MeasDateGiven {
			r.MeasDate++
		}
	}
	total := Table1Row{Venue: "Total"}
	rows := make([]Table1Row, 0, len(order)+1)
	for _, name := range order {
		r := byVenue[name]
		if r.Total > 0 {
			r.UsingPercent = 100 * float64(r.Using) / float64(r.Total)
		}
		rows = append(rows, *r)
		total.Total += r.Total
		total.Using += r.Using
		total.Y += r.Y
		total.V += r.V
		total.N += r.N
		total.ListDate += r.ListDate
		total.MeasDate += r.MeasDate
	}
	if total.Total > 0 {
		total.UsingPercent = 100 * float64(total.Using) / float64(total.Total)
	}
	return append(rows, total)
}

// UsageCount is one entry of Table 1's right panel.
type UsageCount struct {
	Source, Subset string
	Count          int
}

// UsageCounts aggregates which list subsets the confirmed papers use
// (multiple counts for papers using multiple lists).
func UsageCounts(corpus []Paper, used []int) []UsageCount {
	inUse := make(map[int]bool, len(used))
	for _, id := range used {
		inUse[id] = true
	}
	counts := make(map[ListUse]int)
	for _, p := range corpus {
		if !inUse[p.ID] {
			continue
		}
		for _, u := range p.Lists {
			counts[u]++
		}
	}
	out := make([]UsageCount, 0, len(counts))
	for u, n := range counts {
		out = append(out, UsageCount{Source: u.Source, Subset: u.Subset, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Subset < out[j].Subset
	})
	return out
}

// ExclusiveAlexaCount reports how many confirmed papers use Alexa as
// their only list source (paper: 59 of 69).
func ExclusiveAlexaCount(corpus []Paper, used []int) int {
	inUse := make(map[int]bool, len(used))
	for _, id := range used {
		inUse[id] = true
	}
	n := 0
	for _, p := range corpus {
		if !inUse[p.ID] || len(p.Lists) == 0 {
			continue
		}
		all := true
		for _, u := range p.Lists {
			if u.Source != "alexa" {
				all = false
				break
			}
		}
		if all {
			n++
		}
	}
	return n
}

// ReplicabilityCounts reports how many confirmed papers state the list
// date, the measurement date, and both (paper: 7, 9, and 2).
func ReplicabilityCounts(corpus []Paper, used []int) (listDate, measDate, both int) {
	inUse := make(map[int]bool, len(used))
	for _, id := range used {
		inUse[id] = true
	}
	for _, p := range corpus {
		if !inUse[p.ID] {
			continue
		}
		if p.ListDateGiven {
			listDate++
		}
		if p.MeasDateGiven {
			measDate++
		}
		if p.ListDateGiven && p.MeasDateGiven {
			both++
		}
	}
	return
}
