// Command webprobe runs the paper's §8.2/§8.3 HTTPS campaign over a
// real TLS network path: it simulates the ecosystem, serves every
// simulated domain's web endpoint behind one TLS listener (per-SNI
// certificates, per-domain ALPN), and probes each list's head the way
// zgrab/nghttp2 did — handshake, follow redirects, classify TLS, HSTS,
// and HTTP/2 on the landing page.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/webd"

	toplists "repro"
)

func main() {
	study, err := toplists.Simulate(context.Background(),
		toplists.WithScale(toplists.TestScale()))
	if err != nil {
		log.Fatal(err)
	}
	day := study.Archive.Last()

	srv, err := webd.Listen(study.World.ProberAt(int(day)), "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("TLS endpoints for the simulated world on %s\n\n", srv.Addr())

	prober := webd.NewProber(srv.Addr(), srv.CertPool())
	ctx := context.Background()

	fmt.Printf("%-10s %8s %8s %8s %8s\n", "list", "names", "TLS", "HSTS", "HTTP/2")
	for _, provider := range []string{toplists.Alexa, toplists.Umbrella, toplists.Majestic} {
		names := study.Archive.Get(provider, day).Top(150).Names()
		results, err := webd.ProbeAll(ctx, prober, names, 12)
		if err != nil {
			log.Fatalf("%s campaign: %v", provider, err)
		}
		var tlsN, hstsN, h2N int
		for _, res := range results {
			if res.TLS {
				tlsN++
			}
			if res.HSTSEnabled() {
				hstsN++
			}
			if res.HTTP2 {
				h2N++
			}
		}
		n := float64(len(results))
		fmt.Printf("%-10s %8d %7.1f%% %7.1f%% %7.1f%%\n",
			provider, len(results), 100*float64(tlsN)/n, 100*float64(hstsN)/n, 100*float64(h2N)/n)
	}
	fmt.Println("\nthe heads over-represent TLS/HSTS/HTTP2 vs the population — Table 5's bias, measured over the wire")
}
