package experiments

import (
	"fmt"

	"repro/internal/aggregate"
	"repro/internal/toplist"
)

func init() {
	register("aggregation", "Extension: Tranco-style aggregation stabilises lists (§9 recommendation)", runAggregation)
}

// runAggregation evaluates churn over the final evaluation span of the
// archive: single-provider base-domain lists versus sliding Dowdall
// aggregates at several window lengths. Base-domain normalisation is
// done once per snapshot; the aggregate rankings are maintained
// incrementally.
func runAggregation(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	evalDays := 40
	if evalDays > st.Days()/2 {
		evalDays = st.Days() / 2
	}
	maxWindow := 30
	start := st.Days() - evalDays - maxWindow
	if start < 0 {
		start = 0
	}
	// Pre-normalise every needed snapshot once.
	type daySet struct{ lists []*toplist.List }
	var days []daySet
	for d := start; d < st.Days(); d++ {
		var lists []*toplist.List
		for _, p := range st.Providers() {
			lists = append(lists, st.Archive.Get(p, toplist.Day(d)).BaseDomains())
		}
		days = append(days, daySet{lists})
	}

	res := &Result{
		Paper:  "§9 'Consider Stability' / Tranco (Le Pochat et al. 2019): aggregating providers and days suppresses churn and weekly patterns",
		Header: []string{"list", "mean daily churn (base domains)"},
	}
	evalFrom := len(days) - evalDays
	for pi, p := range st.Providers() {
		var series []*toplist.List
		for _, ds := range days[evalFrom:] {
			series = append(series, ds.lists[pi])
		}
		res.Rows = append(res.Rows, []string{p, pct(aggregate.MeanChurn(series))})
	}
	for _, window := range []int{1, 7, 30} {
		slider, err := aggregate.NewSlider(window, st.Scale.ListSize)
		if err != nil {
			return nil, err
		}
		var series []*toplist.List
		for i, ds := range days {
			slider.Push(ds.lists...)
			if i >= evalFrom {
				series = append(series, slider.List())
			}
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("aggregate (3 providers, %d-day window)", window),
			pct(aggregate.MeanChurn(series)),
		})
	}
	res.Notes = append(res.Notes, fmt.Sprintf("evaluated over the final %d days", evalDays))
	return res, nil
}
