// Command shardd is a simulation shard worker: it holds a slice of the
// per-domain provider state and serves the versioned /shard/v1 wire API
// that a coordinator (`toplistd -shard-worker`, or anything driving
// internal/shard.Coordinator) farms day-stepping out to. A worker is
// stateless across runs: the coordinator opens a session describing the
// job (population config, generator options, traffic-model fingerprint)
// and the shard bounds, seeds the session with the current EMA state,
// then steps it one day at a time, each step returning the shard's
// partial sums as a content-hashed binary frame.
//
// Determinism is the point: a worker computes exactly the arithmetic the
// in-process generator would, in the same order, over the same shard
// boundaries, so the coordinator's merged archive is bitwise identical
// to a local run no matter how many workers serve it — and a worker
// that dies mid-run is replaceable by any other, reseeded from the
// coordinator's merged state.
//
// Built worlds are cached (keyed by population config) up to
// -max-worlds, so coordinators re-running the same scale skip the
// world-build cost; sessions pin their model, so cache eviction never
// breaks a run in flight.
//
// /metrics exposes the serving-core series plus the shard counters
// (sessions opened, days stepped, frames rejected).
//
// Usage:
//
//	shardd [-addr :8090] [-max-worlds 4] [-limit N] [-access-log=false]
//
// Exit status: 0 on success, 2 for invocation errors, 1 for
// operational failures.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"

	"repro/internal/serve"
	"repro/internal/shard"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "shardd:", err)
		var ue *usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

const usage = `usage: shardd [-addr :8090] [-max-worlds 4] [-limit N] [-access-log=false]`

// usageError is an invocation mistake, printed with the synopsis and
// exited 2 — the same "called wrong" vs "ran and failed" split the
// other commands make.
type usageError struct {
	msg string
}

func (e *usageError) Error() string { return e.msg + "\n" + usage }

func badUsage(format string, a ...any) *usageError {
	return &usageError{msg: fmt.Sprintf(format, a...)}
}

type config struct {
	addr      string
	maxWorlds int
	limit     int
	accessLog bool
}

func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("shardd", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	addr := fs.String("addr", ":8090", "listen address for the shard wire API and /metrics")
	maxWorlds := fs.Int("max-worlds", 4, "max built worlds cached across jobs")
	limit := fs.Int("limit", 1024, "max concurrent requests before shedding with 503 (0 = unlimited)")
	accessLog := fs.Bool("access-log", true, "log one line per request")
	if err := fs.Parse(args); err != nil {
		return nil, badUsage("%v", err)
	}
	if fs.NArg() > 0 {
		return nil, badUsage("unexpected argument %q", fs.Arg(0))
	}
	if *maxWorlds < 1 {
		return nil, badUsage("-max-worlds must be >= 1")
	}
	if *limit < 0 {
		return nil, badUsage("-limit must be >= 0")
	}
	return &config{
		addr:      *addr,
		maxWorlds: *maxWorlds,
		limit:     *limit,
		accessLog: *accessLog,
	}, nil
}

func run(args []string, logw io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	logger := log.New(logw, "shardd: ", log.LstdFlags)

	ctx, stop := serve.SignalContext(context.Background())
	defer stop()

	metrics := serve.NewMetrics()
	worker := shard.NewWorker(
		shard.WithWorkerLogger(logger),
		shard.WithWorkerMetrics(metrics),
		shard.WithMaxWorlds(cfg.maxWorlds))

	mux := http.NewServeMux()
	worker.Mount(mux)
	mux.Handle("GET /metrics", metrics.Handler())
	var accessLogger *log.Logger
	if cfg.accessLog {
		accessLogger = logger
	}
	daemon := &serve.Daemon{
		Addr: cfg.addr,
		Handler: serve.Chain(mux,
			metrics.Instrument(serve.RouteLabel),
			serve.AccessLog(accessLogger),
			serve.Limit(cfg.limit, metrics),
			serve.Recover(logger, metrics),
		),
		Logger: logger,
	}
	addr, err := daemon.Listen()
	if err != nil {
		return err
	}
	logger.Printf("serving %s on http://%s (max %d cached worlds)",
		shard.APIPrefix, addr, cfg.maxWorlds)
	return daemon.Run(ctx)
}
