// Command toplists drives the reproduction: it simulates the top-list
// ecosystem, regenerates the paper's tables and figures, and exports
// daily snapshots as CSV files.
//
// Usage:
//
//	toplists list                         # show experiment IDs
//	toplists experiment <id>... [flags]   # print one or more tables/figures
//	toplists all [flags]                  # print every table/figure
//	toplists figures -out DIR [flags]     # render experiments as SVG charts
//	toplists rank <domain>... [flags]     # track domains' ranks (Table 4 style)
//	toplists gen -out DIR [flags]         # write rank,domain CSVs
//
// Flags:
//
//	-scale test|default   simulation scale (default "test")
//	-seed N               root seed (default 1)
//	-days N               override the simulated JOINT window length
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/chart"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/simnet"
	"repro/internal/toplist"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "toplists:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: toplists <list|experiment|all|figures|gen> [flags]")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	scaleName := fs.String("scale", "test", "simulation scale: test or default")
	seed := fs.Uint64("seed", 1, "root seed")
	days := fs.Int("days", 0, "override the simulated window length (days)")
	outDir := fs.String("out", "snapshots", "output directory for gen")

	// For `experiment` and `rank`, positional arguments come before
	// the flags; they share a single simulation.
	var positional []string
	if cmd == "experiment" || cmd == "rank" {
		for len(rest) > 0 && len(rest[0]) > 0 && rest[0][0] != '-' {
			positional = append(positional, rest[0])
			rest = rest[1:]
		}
		if len(positional) == 0 {
			if cmd == "rank" {
				return fmt.Errorf("usage: toplists rank <domain>... [flags]")
			}
			return fmt.Errorf("usage: toplists experiment <id>... [flags]; IDs: %v", experiments.IDs())
		}
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}

	scale, err := pickScale(*scaleName, *seed, *days)
	if err != nil {
		return err
	}

	switch cmd {
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Printf("%-16s %s\n", id, experiments.Title(id))
		}
		return nil
	case "experiment":
		env := experiments.NewEnv(scale)
		for i, id := range positional {
			res, err := experiments.Run(env, id)
			if err != nil {
				return err
			}
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(res.Render())
		}
		return nil
	case "rank":
		return trackRanks(scale, positional)
	case "all":
		env := experiments.NewEnv(scale)
		results, err := experiments.RunAll(env)
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Print(r.Render())
			fmt.Println()
		}
		return nil
	case "figures":
		return figures(scale, *outDir)
	case "gen":
		return generate(scale, *outDir)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// trackRanks prints each domain's per-provider rank variation over
// the simulated window, Table 4 style, with a sparkline (tall bar =
// near rank 1, '·' = not listed). Unknown domains report zero
// presence rather than failing, mirroring a real tracker.
func trackRanks(scale core.Scale, domains []string) error {
	st, err := core.Run(scale)
	if err != nil {
		return err
	}
	fmt.Printf("window %s..%s, list size %d\n\n",
		st.Archive.First(), st.Archive.Last(), st.Scale.ListSize)
	for _, domain := range domains {
		fmt.Println(domain)
		for _, p := range st.Providers() {
			series := st.Analysis.RankSeries(p, domain)
			s := analysis.SummariseRanks(series)
			if s.Presence == 0 {
				fmt.Printf("  %-10s never listed\n", p)
				continue
			}
			fmt.Printf("  %-10s best %-6d median %-6d worst %-6d listed %5.1f%%  %s\n",
				p, s.Highest, s.Median, s.Lowest, 100*s.Presence,
				analysis.Sparkline(series, st.Scale.ListSize))
		}
	}
	return nil
}

// figures renders every chartable experiment as an SVG line chart —
// the reproduction's actual figures. Experiments whose tables are
// categorical (e.g. the survey) are skipped with a notice.
func figures(scale core.Scale, outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	env := experiments.NewEnv(scale)
	written, skipped := 0, 0
	for _, id := range experiments.IDs() {
		if !chartable(id) {
			skipped++
			continue
		}
		res, err := experiments.Run(env, id)
		if err != nil {
			return err
		}
		line, err := chart.FromTable(res.Header, res.Rows)
		if err != nil {
			skipped++
			continue
		}
		line.Title = fmt.Sprintf("%s — %s", res.ID, res.Title)
		path := filepath.Join(outDir, res.ID+".svg")
		if err := os.WriteFile(path, []byte(line.SVG()), 0o644); err != nil {
			return err
		}
		written++
	}
	fmt.Printf("wrote %d figures to %s (%d experiments not chartable)\n", written, outDir, skipped)
	return nil
}

// chartable reports whether an experiment's table is a series over an
// ordered x axis (figures and sweep-style ablations). The categorical
// tables (survey, structure, measurement matrices) stay text-only.
func chartable(id string) bool {
	if len(id) >= 3 && id[:3] == "fig" {
		return true
	}
	switch id {
	case "ablation-horizon", "aggregation":
		return true
	}
	return false
}

func pickScale(name string, seed uint64, days int) (core.Scale, error) {
	var s core.Scale
	switch name {
	case "test":
		s = core.TestScale()
	case "default":
		s = core.DefaultScale()
	default:
		return s, fmt.Errorf("unknown scale %q (want test or default)", name)
	}
	s.Population.Seed = seed
	if days > 0 {
		s.Population.Days = days
	}
	return s, nil
}

// generate writes one CSV per provider per day, in the providers'
// publication format, plus day-0 com/net/org zone files (the general
// population source, like the TLD zones the paper consumed).
func generate(scale core.Scale, outDir string) error {
	st, err := core.Run(scale)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for _, tld := range []string{"com", "net", "org"} {
		f, err := os.Create(filepath.Join(outDir, tld+".zone"))
		if err != nil {
			return err
		}
		err = simnet.WriteZone(f, tld, st.World.ZoneDomains(0, tld), nil)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	count := 0
	for _, p := range st.Providers() {
		for day := 0; day < st.Days(); day++ {
			l := st.Archive.Get(p, toplist.Day(day))
			name := fmt.Sprintf("%s-%s.csv", p, toplist.Day(day))
			f, err := os.Create(filepath.Join(outDir, name))
			if err != nil {
				return err
			}
			if err := toplist.WriteCSV(f, l); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			count++
		}
	}
	fmt.Printf("wrote %d snapshots to %s\n", count, outDir)
	return nil
}
