// Package toplists is the public API of the reproduction of "A Long
// Way to the Top: Significance, Structure, and Stability of Internet
// Top Lists" (IMC 2018).
//
// The library simulates the ecosystem the paper measures — a synthetic
// Internet population, daily Alexa/Umbrella/Majestic-style list
// generation, DNS/TLS/HTTP2 measurement infrastructure, and a RIPE
// Atlas-style probe fleet — and regenerates every table and figure of
// the paper's evaluation from it.
//
// Quick start:
//
//	study, err := toplists.Simulate(toplists.TestScale())
//	if err != nil { ... }
//	list := study.Archive.Get(toplists.Alexa, 0) // day-0 Alexa snapshot
//
//	lab := toplists.NewLab(toplists.TestScale())
//	res, err := lab.Run("table5")
//	fmt.Print(res.Render())
package toplists

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/providers"
	"repro/internal/toplist"
)

// Scale bundles the simulation sizing knobs (population, list size,
// head subset, burn-in).
type Scale = core.Scale

// Study is a fully materialised simulation: world, model, archive, and
// the analysis/measurement layers.
type Study = core.Study

// Experiment is a regenerated table or figure.
type Experiment = experiments.Result

// Provider names used throughout archives and reports.
const (
	Alexa    = providers.Alexa
	Umbrella = providers.Umbrella
	Majestic = providers.Majestic
)

// TestScale returns the fast scale used by tests and benchmarks.
func TestScale() Scale { return core.TestScale() }

// DefaultScale returns the EXPERIMENTS.md scale.
func DefaultScale() Scale { return core.DefaultScale() }

// SnapshotSink receives snapshots as the simulation engine produces
// them; see Stream.
type SnapshotSink = toplist.SnapshotSink

// SinkFunc adapts a function to a SnapshotSink.
type SinkFunc = engine.SinkFunc

// Simulate builds the world and generates the daily snapshot archive.
// Generation runs on the concurrent engine; set Scale.Workers to 1 to
// force the serial reference path (the output is identical).
func Simulate(s Scale) (*Study, error) { return core.Run(s) }

// Stream builds the world and streams every daily snapshot into sink
// as it is generated — days ascending, providers in Alexa, Umbrella,
// Majestic order within a day — instead of materialising a Study.
// Consumers that want a day barrier can also implement
// EndDay(toplist.Day) error (see internal/engine.DaySink).
func Stream(s Scale, sink SnapshotSink) error {
	_, eng, err := core.NewEngine(s)
	if err != nil {
		return err
	}
	return eng.Run(s.Population.Days, sink)
}

// ExperimentIDs lists every reproducible table/figure ID.
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentTitle returns the display title for an experiment ID.
func ExperimentTitle(id string) string { return experiments.Title(id) }

// Lab runs experiments against one shared simulation.
type Lab struct {
	env *experiments.Env
}

// NewLab prepares a lab at the given scale; the simulation runs on
// first use and is shared by all experiments.
func NewLab(scale Scale) *Lab {
	return &Lab{env: experiments.NewEnv(scale)}
}

// Study returns the lab's underlying study (materialising it if
// needed).
func (l *Lab) Study() (*Study, error) { return l.env.Study() }

// Run regenerates one table or figure.
func (l *Lab) Run(id string) (*Experiment, error) {
	return experiments.Run(l.env, id)
}

// RunAll regenerates every table and figure in ID order.
func (l *Lab) RunAll() ([]*Experiment, error) {
	return experiments.RunAll(l.env)
}
