// Package webd serves the simulated web endpoints over a real TLS
// listener and probes them back — the live counterpart of the paper's
// zgrab TLS scans and nghttp2 HTTP/2 fetches (§8.2, §8.3).
//
// One listener impersonates every simulated domain: the TLS layer
// mints a leaf certificate per SNI name on the fly (signed by an
// in-memory CA the prober trusts), negotiates "h2" only for domains
// whose endpoint is HTTP/2-capable, fails the handshake outright for
// TLS-less domains, and the HTTP layer replays each domain's HSTS
// header and redirect chain. The Prober implements the paper's probe
// method — handshake, follow up to 10 redirects, classify the landing
// page — over the loopback network.
package webd

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"io"
	"log"
	"math/big"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/simnet"
)

// Server terminates TLS for every simulated domain on one address.
type Server struct {
	prober simnet.WebProber
	ca     *authority
	http   *http.Server
	ln     net.Listener

	mu    sync.Mutex
	leafs map[string]*tls.Certificate
}

// Listen starts a TLS server for the prober's domains on addr
// (e.g. "127.0.0.1:0").
func Listen(prober simnet.WebProber, addr string) (*Server, error) {
	ca, err := newAuthority()
	if err != nil {
		return nil, err
	}
	s := &Server{
		prober: prober,
		ca:     ca,
		leafs:  make(map[string]*tls.Certificate),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handle)
	mux.HandleFunc("/hop/", s.handle)
	s.http = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		TLSConfig: &tls.Config{
			GetConfigForClient: s.configFor,
		},
		// Handshake refusals for TLS-less domains are expected
		// behaviour, not noise worth logging.
		ErrorLog: log.New(io.Discard, "", 0),
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	go s.http.ServeTLS(ln, "", "") //nolint:errcheck // terminates on Close
	return s, nil
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// CertPool returns a pool trusting the server's in-memory CA — what a
// Prober needs to verify the minted certificates.
func (s *Server) CertPool() *x509.CertPool {
	pool := x509.NewCertPool()
	pool.AddCert(s.ca.cert)
	return pool
}

// Close stops the listener.
func (s *Server) Close() error { return s.http.Close() }

// configFor implements per-domain TLS behaviour: no certificate for
// unreachable or TLS-less domains (the handshake fails, as a closed
// :443 would), and "h2" in ALPN only for HTTP/2-capable endpoints.
func (s *Server) configFor(hello *tls.ClientHelloInfo) (*tls.Config, error) {
	name := strings.ToLower(hello.ServerName)
	if name == "" {
		return nil, fmt.Errorf("webd: SNI required")
	}
	res := s.prober.Probe(name)
	if !res.Reachable || !res.TLS {
		return nil, fmt.Errorf("webd: %s does not speak TLS", name)
	}
	leaf, err := s.leafFor(name)
	if err != nil {
		return nil, err
	}
	cfg := &tls.Config{
		Certificates: []tls.Certificate{*leaf},
		NextProtos:   []string{"http/1.1"},
	}
	if res.HTTP2 {
		cfg.NextProtos = []string{"h2", "http/1.1"}
	}
	return cfg, nil
}

// leafFor returns (minting if needed) the certificate for name.
func (s *Server) leafFor(name string) (*tls.Certificate, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if leaf, ok := s.leafs[name]; ok {
		return leaf, nil
	}
	leaf, err := s.ca.issue(name)
	if err != nil {
		return nil, err
	}
	s.leafs[name] = leaf
	return leaf, nil
}

// handle replays the domain's redirect chain and final landing page.
// "/" starts the chain; "/hop/N" is the N-th redirect target.
func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	host := r.Host
	if h, _, err := net.SplitHostPort(host); err == nil {
		host = h
	}
	res := s.prober.Probe(strings.ToLower(host))
	if !res.Reachable {
		http.Error(w, "no such site", http.StatusServiceUnavailable)
		return
	}
	if res.HSTSHeader != "" {
		w.Header().Set("Strict-Transport-Security", res.HSTSHeader)
	} else if res.HSTSMaxAge > 0 {
		w.Header().Set("Strict-Transport-Security", "max-age="+strconv.Itoa(res.HSTSMaxAge))
	}
	hop := 0
	if strings.HasPrefix(r.URL.Path, "/hop/") {
		n, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/hop/"))
		if err != nil || n < 1 {
			http.NotFound(w, r)
			return
		}
		hop = n
	}
	if hop < res.Redirects {
		w.Header().Set("Location", fmt.Sprintf("/hop/%d", hop+1))
		w.WriteHeader(http.StatusFound)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<html><body>landing page of %s via %s</body></html>\n", host, r.Proto)
}

// authority is the in-memory issuing CA.
type authority struct {
	cert *x509.Certificate
	key  *ecdsa.PrivateKey
}

func newAuthority() (*authority, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	tpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "webd reproduction CA"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tpl, tpl, &key.PublicKey, key)
	if err != nil {
		return nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &authority{cert: cert, key: key}, nil
}

// issue mints a leaf certificate for one DNS name.
func (a *authority) issue(name string) (*tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	serial, err := rand.Int(rand.Reader, big.NewInt(1<<62))
	if err != nil {
		return nil, err
	}
	tpl := &x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: name},
		DNSNames:     []string{name},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	der, err := x509.CreateCertificate(rand.Reader, tpl, a.cert, &key.PublicKey, a.key)
	if err != nil {
		return nil, err
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &tls.Certificate{
		Certificate: [][]byte{der, a.cert.Raw},
		PrivateKey:  key,
		Leaf:        leaf,
	}, nil
}
