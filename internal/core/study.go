// Package core wires the substrates into a complete study: build the
// synthetic world, run the three list generators over the JOINT window,
// and expose the analysis and measurement layers. It is the library's
// central entry point; the public facade (package toplists at the
// module root) re-exports it.
package core

import (
	"context"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/engine"
	"repro/internal/measure"
	"repro/internal/population"
	"repro/internal/providers"
	"repro/internal/toplist"
	"repro/internal/traffic"
)

// Scale bundles the knobs that trade fidelity for runtime.
type Scale struct {
	Name string
	// Population configures the synthetic world.
	Population population.Config
	// ListSize is the published list length (the paper's 1M analog).
	ListSize int
	// HeadSize is the head subset (the paper's Top 1k analog; the
	// paper's head:list ratio is 1:1000, ours defaults to 1:100 so head
	// statistics remain stable at small scale).
	HeadSize int
	// BurnInDays warms the provider windows before day 0.
	BurnInDays int
	// Workers is the engine parallelism: 0 uses every core
	// (GOMAXPROCS), 1 forces the serial reference path. The archive is
	// bitwise identical either way (internal/engine's equivalence
	// tests pin this); the knob only trades wall-clock.
	Workers int
}

// TestScale is the fast scale used by tests and benchmarks.
func TestScale() Scale {
	return Scale{
		Name:       "test",
		Population: population.TestConfig(),
		ListSize:   3000,
		HeadSize:   100,
		BurnInDays: 60,
	}
}

// DefaultScale is the EXPERIMENTS.md scale.
func DefaultScale() Scale {
	return Scale{
		Name:       "default",
		Population: population.DefaultConfig(),
		ListSize:   25_000,
		HeadSize:   250,
		BurnInDays: 120,
	}
}

// Validate reports scale errors.
func (s Scale) Validate() error {
	if err := s.Population.Validate(); err != nil {
		return err
	}
	if s.ListSize < 10 || s.HeadSize < 1 || s.HeadSize >= s.ListSize {
		return fmt.Errorf("core: bad list/head sizes %d/%d", s.ListSize, s.HeadSize)
	}
	if s.Workers < 0 {
		return fmt.Errorf("core: negative workers %d", s.Workers)
	}
	return nil
}

// Study is a fully materialised simulation run. Archive is the
// read-side interface, not a concrete store: a simulated study holds
// an in-memory toplist.Archive, while a study rebuilt with RunFrom
// serves straight from whatever Source (e.g. a reopened
// toplist.DiskStore) it was given.
type Study struct {
	Scale    Scale
	Opts     providers.Options
	World    *population.World
	Model    *traffic.Model
	Archive  toplist.Source
	Analysis *analysis.Context
	Campaign *measure.Campaign
}

// NewEngine builds the world and a simulation engine for it, for
// callers that stream snapshots day by day (cmd/toplistd -live)
// instead of materialising a Study. The engine covers
// s.Population.Days days.
func NewEngine(s Scale) (*population.World, *engine.Engine, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	w, err := population.Build(s.Population)
	if err != nil {
		return nil, nil, err
	}
	m := traffic.NewModel(w)
	opts := providers.DefaultOptions(s.Population.Days, s.ListSize)
	opts.BurnInDays = s.BurnInDays
	g, err := providers.NewGenerator(m, opts)
	if err != nil {
		return nil, nil, err
	}
	return w, engine.New(g, engine.Config{Workers: s.Workers}), nil
}

// Run builds the world, generates the archive (concurrently, per
// s.Workers), and prepares the analysis layers.
func Run(s Scale) (*Study, error) {
	return RunContext(context.Background(), s, nil)
}

// RunContext is Run with cancellation and an optional tee: when tee is
// non-nil every generated snapshot is additionally streamed into it
// (e.g. a toplist.DiskStore persisting the run), and cancelling ctx
// stops the engine at the next day boundary.
func RunContext(ctx context.Context, s Scale, tee toplist.SnapshotSink) (*Study, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	w, err := population.Build(s.Population)
	if err != nil {
		return nil, err
	}
	m := traffic.NewModel(w)
	opts := providers.DefaultOptions(s.Population.Days, s.ListSize)
	opts.BurnInDays = s.BurnInDays
	g, err := providers.NewGenerator(m, opts)
	if err != nil {
		return nil, err
	}
	days := s.Population.Days
	arch := toplist.NewArchive(0, toplist.Day(days-1))
	arch.Expect(g.EnabledProviders()...)
	eng := engine.New(g, engine.Config{Workers: s.Workers})
	if err := eng.Run(ctx, days, engine.Tee(arch, tee)); err != nil {
		return nil, err
	}
	return &Study{
		Scale:    s,
		Opts:     opts,
		World:    w,
		Model:    m,
		Archive:  arch,
		Analysis: analysis.NewContext(w, arch),
		Campaign: measure.NewCampaign(w),
	}, nil
}

// RunFrom rebuilds a study around an already-generated archive: the
// world, traffic model, and analysis layers are reconstructed
// deterministically from s (which must match the scale that produced
// src), but no simulation runs — the engine is never invoked, and src
// (typically a toplist.DiskStore reopened with toplist.OpenArchive)
// serves every snapshot read. This is how analyses resume from disk
// instead of resimulating.
func RunFrom(s Scale, src toplist.Source) (*Study, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("core: nil archive source")
	}
	if got, want := src.Days(), s.Population.Days; got != want {
		return nil, fmt.Errorf("core: archive covers %d days but scale %q simulates %d", got, s.Name, want)
	}
	w, err := population.Build(s.Population)
	if err != nil {
		return nil, err
	}
	m := traffic.NewModel(w)
	opts := providers.DefaultOptions(s.Population.Days, s.ListSize)
	opts.BurnInDays = s.BurnInDays
	return &Study{
		Scale:    s,
		Opts:     opts,
		World:    w,
		Model:    m,
		Archive:  src,
		Analysis: analysis.NewContext(w, src),
		Campaign: measure.NewCampaign(w),
	}, nil
}

// Days returns the archive length in days.
func (st *Study) Days() int { return st.Archive.Days() }

// ChangeDay returns the Alexa regime-change day.
func (st *Study) ChangeDay() int { return st.Opts.AlexaChangeDay }

// Providers returns the three provider names in the paper's order.
func (st *Study) Providers() []string {
	return []string{providers.Alexa, providers.Umbrella, providers.Majestic}
}

// ListNames returns the names of provider's list on day, cut to head
// entries when head is true.
func (st *Study) ListNames(provider string, day int, head bool) []string {
	l := st.Archive.Get(provider, toplist.Day(day))
	if l == nil {
		return nil
	}
	if head {
		l = l.Top(st.Scale.HeadSize)
	}
	return l.Names()
}

// PopulationNames returns the general-population (com/net/org) sample
// names on day.
func (st *Study) PopulationNames(day int) []string {
	ids := st.World.ComNetOrg(day)
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = st.World.Domains[id].Name
	}
	return names
}
