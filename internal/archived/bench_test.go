package archived

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	servecore "repro/internal/serve"
	"repro/internal/toplist"
)

// BenchmarkArchiveServe is the HTTP load benchmark gating the serving
// fast path (the req/sec analog of BenchmarkEngine's days/sec): a real
// httptest server over a DiskStore, measured end to end through the
// client socket. Variants pin the claim the fast path makes:
//
//   - raw/hot:      fast path, blob cache holding the working set — the
//     steady state of a daemon serving a mirrored archive.
//   - raw/cold:     fast path with an effectively disabled blob cache,
//     so every request is a store read + hash check.
//   - encode/hot:   fallback path (WithoutRawFastPath), warm blob
//     cache — the pre-fast-path steady state.
//   - encode/cold:  fallback path, every request re-runs WriteCSV+gzip
//     over the decoded list (DiskStore decode cache is warm — this is
//     the encoder cost alone, the exact work the raw path deletes).
//   - raw/parallel: fast path, hot cache, concurrent readers.
//   - raw/middleware: raw/hot behind the full production middleware
//     chain (metrics, access log, limiter, recovery) — CI diffs it
//     against raw/hot to gate the chain's overhead at <5% req/sec.
//
// The acceptance bar is raw ≥ 2x req/sec and ≤ 1/4 B/op of encode on
// warm DiskStore-backed serving — compare the cold variants, where
// each request does per-request work on both paths; the hot variants
// both serve from the blob cache and differ little by construction.
func BenchmarkArchiveServe(b *testing.B) {
	middleware := func(h http.Handler) http.Handler {
		m := servecore.NewMetrics()
		return servecore.Chain(h,
			m.Instrument(servecore.RouteLabel),
			servecore.AccessLog(nil),
			servecore.Limit(1024, m),
			servecore.Recover(nil, m),
		)
	}
	for _, v := range []struct {
		name string
		opts []Option
		wrap func(http.Handler) http.Handler
	}{
		{"raw/hot", nil, nil},
		{"raw/cold", []Option{WithBlobCache(1)}, nil},
		{"encode/hot", []Option{WithoutRawFastPath()}, nil},
		{"encode/cold", []Option{WithoutRawFastPath(), WithBlobCache(1)}, nil},
		{"raw/middleware", nil, middleware},
	} {
		b.Run(v.name, func(b *testing.B) {
			ts, paths := benchServer(b, v.opts, v.wrap)
			client, fetch := benchFetcher(b, ts)
			warmServe(b, client, fetch, paths)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fetch(client, paths[i%len(paths)])
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/sec")
		})
	}
	b.Run("raw/parallel", func(b *testing.B) {
		ts, paths := benchServer(b, nil, nil)
		client, fetch := benchFetcher(b, ts)
		warmServe(b, client, fetch, paths)
		b.ReportAllocs()
		b.ResetTimer()
		var next atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := next.Add(1)
				fetch(client, paths[int(i)%len(paths)])
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/sec")
	})
}

// benchServer builds a cold-reopened DiskStore (2 providers × 8 days ×
// 1000 names) and serves it — optionally behind a middleware wrap —
// and returns the server plus every snapshot URL.
func benchServer(b *testing.B, opts []Option, wrap func(http.Handler) http.Handler) (*httptest.Server, []string) {
	b.Helper()
	const days, listSize = 8, 1000
	providers := []string{"alexa", "umbrella"}
	dir := b.TempDir()
	store, err := toplist.CreateDiskStore(dir, 0, days-1)
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, listSize)
	for _, p := range providers {
		for d := 0; d < days; d++ {
			for i := range names {
				names[i] = fmt.Sprintf("%s-%d-site-%04d.example.com", p, d, i)
			}
			if err := store.Put(p, toplist.Day(d), toplist.New(names)); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Reopen cold so the server starts from disk state, like a daemon.
	store, err = toplist.OpenArchive(dir)
	if err != nil {
		b.Fatal(err)
	}
	var handler http.Handler = NewServer(store, opts...)
	if wrap != nil {
		handler = wrap(handler)
	}
	ts := httptest.NewServer(handler)
	b.Cleanup(ts.Close)
	var paths []string
	for _, p := range providers {
		for d := 0; d < days; d++ {
			paths = append(paths, ts.URL+toplist.RemoteSnapshotPath(p, toplist.Day(d)))
		}
	}
	return ts, paths
}

// benchFetcher returns a keepalive client and a fetch that does what
// toplist.Remote does: request the stored encoding and read the
// compressed body to completion.
func benchFetcher(b *testing.B, ts *httptest.Server) (*http.Client, func(*http.Client, string)) {
	b.Helper()
	client := ts.Client()
	fetch := func(c *http.Client, url string) {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			b.Fatal(err)
		}
		req.Header.Set("Accept-Encoding", "gzip")
		resp, err := c.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
	return client, fetch
}

// warmServe touches every slot once before timing: the DiskStore
// decode cache (encode path) and the blob cache (hot variants) are
// steady-state warm, so the timed loop measures serving, not first-hit
// fills.
func warmServe(b *testing.B, client *http.Client, fetch func(*http.Client, string), paths []string) {
	b.Helper()
	for _, p := range paths {
		fetch(client, p)
	}
}
