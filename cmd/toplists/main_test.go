package main

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/simnet"
	"repro/internal/toplist"
)

func TestPickScale(t *testing.T) {
	s, err := pickScale("test", 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Population.Seed != 7 {
		t.Fatalf("seed %d", s.Population.Seed)
	}
	s, err = pickScale("default", 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if s.Population.Days != 42 {
		t.Fatalf("days override %d", s.Population.Days)
	}
	if _, err := pickScale("huge", 1, 0); err == nil {
		t.Fatal("unknown scale should fail")
	}
}

func TestRunUsageErrors(t *testing.T) {
	// Invocation mistakes must be usageErrors (exit 2, with the failing
	// subcommand's synopsis); operational failures must not be.
	usage := []struct {
		name string
		args []string
	}{
		{"no args", nil},
		{"unknown command", []string{"frobnicate"}},
		{"experiment without id", []string{"experiment"}},
		{"rank without domain", []string{"rank"}},
		{"undefined flag", []string{"list", "-frobnicate"}},
		{"verify without -archive", []string{"verify"}},
		{"pack without flags", []string{"pack"}},
		{"unpack without flags", []string{"unpack"}},
	}
	for _, tc := range usage {
		err := run(context.Background(), tc.args)
		if err == nil {
			t.Fatalf("%s should fail", tc.name)
		}
		var ue *usageError
		if !errors.As(err, &ue) {
			t.Fatalf("%s: %v is not a usageError", tc.name, err)
		}
		if !strings.Contains(err.Error(), "usage:") {
			t.Fatalf("%s: %q does not print usage", tc.name, err)
		}
	}
	// A well-formed invocation that fails operationally is not a usage
	// error: scripts must be able to tell the two apart.
	err := run(context.Background(), []string{"verify", "-archive", filepath.Join(t.TempDir(), "nope")})
	if err == nil {
		t.Fatal("verify over a missing dir should fail")
	}
	var ue *usageError
	if errors.As(err, &ue) {
		t.Fatalf("operational failure %v misclassified as usage error", err)
	}
	// -scale validation happens after flag parsing, inside the lab
	// machinery — operational, not usage.
	if err := run(context.Background(), []string{"list", "-scale", "bogus"}); err == nil {
		t.Fatal("bogus scale should fail")
	}
}

// TestPackUnpackSubcommands drives pack → unpack end to end through
// run(): the restored archive must hold byte-identical snapshot files
// and the same manifest hashes as the original.
func TestPackUnpackSubcommands(t *testing.T) {
	ctx := context.Background()
	src := filepath.Join(t.TempDir(), "src")
	ds, err := toplist.CreateDiskStore(src, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SetScale("test"); err != nil {
		t.Fatal(err)
	}
	if err := ds.Expect("alexa", "umbrella"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"alexa", "umbrella"} {
		for d := toplist.Day(0); d <= 2; d++ {
			if err := ds.Put(p, d, toplist.New([]string{p + "-a.com", p + "-b.org"})); err != nil {
				t.Fatal(err)
			}
		}
	}

	packFile := filepath.Join(t.TempDir(), "src.pack")
	if err := run(ctx, []string{"pack", "-archive", src, "-out", packFile}); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(t.TempDir(), "dst")
	if err := run(ctx, []string{"unpack", "-in", packFile, "-archive", dst}); err != nil {
		t.Fatal(err)
	}

	restored, err := toplist.OpenArchive(dst)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Scale() != "test" {
		t.Fatalf("restored scale %q", restored.Scale())
	}
	if want, got := ds.Expected(), restored.Expected(); len(got) != len(want) {
		t.Fatalf("restored expected %v, want %v", got, want)
	}
	for _, p := range []string{"alexa", "umbrella"} {
		for d := toplist.Day(0); d <= 2; d++ {
			orig, err := os.ReadFile(filepath.Join(src, p, d.String()+".csv.gz"))
			if err != nil {
				t.Fatal(err)
			}
			back, err := os.ReadFile(filepath.Join(dst, p, d.String()+".csv.gz"))
			if err != nil {
				t.Fatal(err)
			}
			if string(orig) != string(back) {
				t.Fatalf("%s %s: restored file is not byte-identical", p, d)
			}
			if ds.RawHash(p, d) == "" || ds.RawHash(p, d) != restored.RawHash(p, d) {
				t.Fatalf("%s %s: manifest hash %q != %q", p, d, restored.RawHash(p, d), ds.RawHash(p, d))
			}
		}
	}
	if err := run(ctx, []string{"verify", "-archive", dst}); err != nil {
		t.Fatalf("verify over restored archive: %v", err)
	}

	// Packing a missing archive is operational (exit 1), not usage.
	err = run(ctx, []string{"pack", "-archive", filepath.Join(src, "nope"), "-out", packFile + "2"})
	if err == nil {
		t.Fatal("pack over a missing archive should fail")
	}
	var ue *usageError
	if errors.As(err, &ue) {
		t.Fatalf("operational pack failure %v misclassified as usage error", err)
	}
}

func TestRunList(t *testing.T) {
	if err := run(context.Background(), []string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateWritesSnapshots(t *testing.T) {
	dir := t.TempDir()
	scale, err := pickScale("test", 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	scale.BurnInDays = 10
	scale.Population.Sites = 2000
	scale.Population.BirthsPerDay = 10
	scale.ListSize = 200
	scale.HeadSize = 20
	lab, err := newLab(context.Background(), scale, "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := generate(lab, dir); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 3*10 {
		t.Fatalf("snapshots %d, want 30", len(matches))
	}
	// Zone files for the general population.
	for _, tld := range []string{"com", "net", "org"} {
		f, err := os.Open(filepath.Join(dir, tld+".zone"))
		if err != nil {
			t.Fatal(err)
		}
		origin, domains, err := simnet.ParseZone(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if origin != tld || len(domains) == 0 {
			t.Fatalf("zone %s: origin %q, %d domains", tld, origin, len(domains))
		}
	}
	// Round-trip one file through the CSV reader.
	f, err := os.Open(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	l, err := toplist.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 200 {
		t.Fatalf("snapshot length %d", l.Len())
	}
}

func TestFiguresWritesSVGs(t *testing.T) {
	dir := t.TempDir()
	scale, err := pickScale("test", 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	scale.BurnInDays = 10
	scale.Population.Sites = 2000
	scale.Population.BirthsPerDay = 10
	scale.ListSize = 200
	scale.HeadSize = 20
	lab, err := newLab(context.Background(), scale, "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := figures(context.Background(), lab, dir); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "fig*.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) < 10 {
		t.Fatalf("figure SVGs = %d, want >= 10", len(matches))
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") || !strings.Contains(string(data), "polyline") {
		t.Fatalf("%s does not look like a line chart", matches[0])
	}
}

func TestChartableSelection(t *testing.T) {
	for _, id := range []string{"fig1a", "fig8", "ablation-horizon", "aggregation"} {
		if !chartable(id) {
			t.Errorf("%s should be chartable", id)
		}
	}
	for _, id := range []string{"table1", "table5", "ttl", "hygiene", "manipulation", "similarity"} {
		if chartable(id) {
			t.Errorf("%s should stay text-only", id)
		}
	}
}

// TestSaveThenArchiveRoundTrip drives the new flag pair end to end:
// a lab simulating with -save persists the archive, and a second lab
// built with -archive regenerates the identical experiment from disk.
func TestSaveThenArchiveRoundTrip(t *testing.T) {
	ctx := context.Background()
	scale, err := pickScale("test", 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	scale.BurnInDays = 10
	scale.Population.Sites = 2000
	scale.Population.BirthsPerDay = 10
	scale.ListSize = 200
	scale.HeadSize = 20

	dir := filepath.Join(t.TempDir(), "joint")
	saving, err := newLab(context.Background(), scale, "", "", dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := saving.Run(ctx, "table2")
	if err != nil {
		t.Fatal(err)
	}

	resumed, err := newLab(context.Background(), scale, dir, "", "")
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Run(ctx, "table2")
	if err != nil {
		t.Fatal(err)
	}
	if want.Render() != got.Render() {
		t.Fatalf("archived rerun differs:\n%s\nvs\n%s", want.Render(), got.Render())
	}

	if _, err := newLab(context.Background(), scale, dir, "", dir); err == nil {
		t.Fatal("-archive with -save should fail")
	}
	other := scale
	other.Name = "default"
	if _, err := newLab(context.Background(), other, dir, "", ""); err == nil {
		t.Fatal("scale mismatch against the manifest should fail")
	}

	// -remote: the same archive served over the wire API regenerates
	// the identical experiment, and the exclusivity/scale checks hold.
	store, err := toplists.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(toplists.ArchiveHandler(store))
	defer srv.Close()
	remote, err := newLab(context.Background(), scale, "", srv.URL, "")
	if err != nil {
		t.Fatal(err)
	}
	rgot, err := remote.Run(ctx, "table2")
	if err != nil {
		t.Fatal(err)
	}
	if want.Render() != rgot.Render() {
		t.Fatalf("remote rerun differs:\n%s\nvs\n%s", want.Render(), rgot.Render())
	}
	if _, err := newLab(context.Background(), scale, dir, srv.URL, ""); err == nil {
		t.Fatal("-archive with -remote should fail")
	}
	if _, err := newLab(context.Background(), other, "", srv.URL, ""); err == nil {
		t.Fatal("scale mismatch against the remote manifest should fail")
	}
}

// TestVerifySubcommand drives `toplists verify` over a healthy archive,
// a tampered one, and bad usage.
func TestVerifySubcommand(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	ds, err := toplist.CreateDiskStore(dir, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for d := toplist.Day(0); d <= 1; d++ {
		if err := ds.Put("alexa", d, toplist.New([]string{"a.com", "b.org"})); err != nil {
			t.Fatal(err)
		}
	}
	if err := run(ctx, []string{"verify", "-archive", dir}); err != nil {
		t.Fatalf("verify over healthy archive: %v", err)
	}
	// Tamper with one snapshot behind the store's back.
	path := filepath.Join(dir, "alexa", toplist.Day(1).String()+".csv.gz")
	if err := os.WriteFile(path, []byte("rotted"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(ctx, []string{"verify", "-archive", dir})
	if err == nil {
		t.Fatal("verify over tampered archive returned nil")
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("verify error %q does not mention corruption", err)
	}
	if err := run(ctx, []string{"verify"}); err == nil {
		t.Fatal("verify without -archive should be a usage error")
	}
	if err := run(ctx, []string{"verify", "-archive", filepath.Join(dir, "nope")}); err == nil {
		t.Fatal("verify over a non-archive dir should fail")
	}
}

// TestVerifyPackSubcommand drives `toplists verify -pack` over a
// healthy packed archive, a tampered one, and bad usage.
func TestVerifyPackSubcommand(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	ds, err := toplist.CreateDiskStore(dir, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for d := toplist.Day(0); d <= 1; d++ {
		if err := ds.Put("alexa", d, toplist.New([]string{"a.com", "b.org"})); err != nil {
			t.Fatal(err)
		}
	}
	file := filepath.Join(t.TempDir(), "archive.pack")
	if err := run(ctx, []string{"pack", "-archive", dir, "-out", file}); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, []string{"verify", "-pack", file}); err != nil {
		t.Fatalf("verify over healthy pack: %v", err)
	}

	// Flip one byte inside a blob region (past the header) so exactly
	// the damaged slot fails its directory-hash check.
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0xff
	if err := os.WriteFile(file, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(ctx, []string{"verify", "-pack", file})
	if err == nil {
		t.Fatal("verify over tampered pack returned nil")
	}

	if err := run(ctx, []string{"verify", "-pack", file, "-archive", dir}); err == nil {
		t.Fatal("verify with both -pack and -archive should be a usage error")
	}
	if err := run(ctx, []string{"verify", "-pack", filepath.Join(dir, "nope.pack")}); err == nil {
		t.Fatal("verify over a missing pack should fail")
	}
}
