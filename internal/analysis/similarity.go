package analysis

import (
	"math"

	"repro/internal/stats"
	"repro/internal/toplist"
)

// Rank-similarity ablation. The paper measures order stability with
// Kendall's τ over common domains (§6.3, Fig. 4). τ has two known
// blind spots for top lists: it ignores domains present in only one of
// the two lists (precisely the churn the paper documents), and it
// weights a swap at rank 900 as much as a swap at rank 2. This file
// computes the same day-to-day and cross-provider comparisons under
// four metrics — τ, Spearman's ρ, the Spearman footrule, and
// Rank-Biased Overlap — so the choice of metric itself can be ablated
// (experiment "similarity").

// Similarity bundles the four rank-similarity readings for one list
// pair. Tau/Rho/Footrule are computed over the common-domain
// projection; RBO is computed over the full lists (it handles
// non-conjoint lists natively).
type Similarity struct {
	Tau      float64 // Kendall τ-b in [-1,1]
	Rho      float64 // Spearman ρ in [-1,1]
	Footrule float64 // normalised displacement in [0,1], 0 = identical
	RBO      float64 // rank-biased overlap in [0,1], 1 = identical
	Common   int     // size of the common-domain projection
}

// SimilarityBetween compares two lists under every metric. p is the
// RBO persistence parameter.
func (c *Context) SimilarityBetween(a, b *toplist.List, p float64) Similarity {
	s := Similarity{
		Tau:      math.NaN(),
		Rho:      math.NaN(),
		Footrule: math.NaN(),
		RBO:      math.NaN(),
	}
	if a == nil || b == nil {
		return s
	}
	s.RBO = stats.RBO(a.Names(), b.Names(), p)

	// Common-domain projection, compressed to permutations of 1..k.
	idsA := c.worldIDs(a)
	rankB := make(map[uint32]int, b.Len())
	for r, id := range c.worldIDs(b) {
		if _, dup := rankB[id]; !dup {
			rankB[id] = r + 1
		}
	}
	var posA, posB []int // original ranks of common domains, in a-order
	seen := make(map[uint32]struct{}, len(idsA))
	for r, id := range idsA {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		if rb, ok := rankB[id]; ok {
			posA = append(posA, r+1)
			posB = append(posB, rb)
		}
	}
	s.Common = len(posA)
	if s.Common < 2 {
		return s
	}
	s.Tau = stats.KendallTauRanks(posA, posB)
	s.Rho = stats.SpearmanRhoRanks(posA, posB)
	s.Footrule = stats.SpearmanFootrule(compressRanks(posA), compressRanks(posB))
	return s
}

// compressRanks maps a strictly increasing-by-set rank vector onto a
// permutation of 1..k preserving relative order.
func compressRanks(pos []int) []int {
	k := len(pos)
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	// Order positions ascending; assign compressed rank by that order.
	for i := 1; i < k; i++ { // insertion sort: k is small vs allocation cost
		for j := i; j > 0 && pos[idx[j]] < pos[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	out := make([]int, k)
	for r, i := range idx {
		out[i] = r + 1
	}
	return out
}

// SimilarityDayToDay compares each consecutive day pair of a
// provider's top subset under every metric.
func (c *Context) SimilarityDayToDay(provider string, top int, p float64) []Similarity {
	var out []Similarity
	var prev *toplist.List
	toplist.EachDay(c.Arch, func(d toplist.Day) {
		cur := c.subset(provider, d, top)
		if prev != nil && cur != nil {
			out = append(out, c.SimilarityBetween(prev, cur, p))
		}
		prev = cur
	})
	return out
}

// SimilarityAcrossProviders compares two providers' same-day top
// subsets under every metric, one reading per day.
func (c *Context) SimilarityAcrossProviders(pa, pb string, top int, p float64) []Similarity {
	var out []Similarity
	toplist.EachDay(c.Arch, func(d toplist.Day) {
		a, b := c.subset(pa, d, top), c.subset(pb, d, top)
		if a != nil && b != nil {
			out = append(out, c.SimilarityBetween(a, b, p))
		}
	})
	return out
}

// SimilaritySummary averages a series, ignoring NaN readings
// per-field.
func SimilaritySummary(series []Similarity) Similarity {
	var sum Similarity
	var nTau, nRho, nFoot, nRBO, nCommon int
	for _, s := range series {
		if !math.IsNaN(s.Tau) {
			sum.Tau += s.Tau
			nTau++
		}
		if !math.IsNaN(s.Rho) {
			sum.Rho += s.Rho
			nRho++
		}
		if !math.IsNaN(s.Footrule) {
			sum.Footrule += s.Footrule
			nFoot++
		}
		if !math.IsNaN(s.RBO) {
			sum.RBO += s.RBO
			nRBO++
		}
		sum.Common += s.Common
		nCommon++
	}
	div := func(v float64, n int) float64 {
		if n == 0 {
			return math.NaN()
		}
		return v / float64(n)
	}
	return Similarity{
		Tau:      div(sum.Tau, nTau),
		Rho:      div(sum.Rho, nRho),
		Footrule: div(sum.Footrule, nFoot),
		RBO:      div(sum.RBO, nRBO),
		Common:   int(div(float64(sum.Common), nCommon)),
	}
}
