package stats

import "sort"

// ECDF is an empirical cumulative distribution function built from a
// sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs. The input is copied.
func NewECDF(xs []float64) *ECDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Eval returns F(x) = P(X <= x) under the empirical distribution.
func (e *ECDF) Eval(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// Count of values <= x.
	n := sort.SearchFloat64s(e.sorted, x)
	for n < len(e.sorted) && e.sorted[n] == x {
		n++
	}
	return float64(n) / float64(len(e.sorted))
}

// Quantile returns the q-quantile of the sample.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return quantileSorted(e.sorted, q)
}

// Len reports the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Points returns (x, F(x)) pairs at each distinct sample value, suitable
// for plotting a CDF curve.
func (e *ECDF) Points() (xs, ys []float64) {
	n := len(e.sorted)
	for i := 0; i < n; {
		j := i
		for j < n && e.sorted[j] == e.sorted[i] {
			j++
		}
		xs = append(xs, e.sorted[i])
		ys = append(ys, float64(j)/float64(n))
		i = j
	}
	return xs, ys
}

// FractionAtMost returns the fraction of the sample <= x (alias of Eval,
// reads better at call sites reporting shares).
func (e *ECDF) FractionAtMost(x float64) float64 { return e.Eval(x) }

// FractionAtLeast returns the fraction of the sample >= x.
func (e *ECDF) FractionAtLeast(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	n := sort.SearchFloat64s(e.sorted, x)
	return float64(len(e.sorted)-n) / float64(len(e.sorted))
}
