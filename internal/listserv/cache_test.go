package listserv

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/toplist"
)

func cacheArchive(t *testing.T, last toplist.Day) *toplist.Archive {
	t.Helper()
	arch := toplist.NewArchive(0, last)
	for d := toplist.Day(0); d <= last; d++ {
		if err := arch.Put("alexa", d, toplist.New([]string{fmt.Sprintf("day%d.com", d), "b.org"})); err != nil {
			t.Fatal(err)
		}
	}
	return arch
}

func TestBlobCacheBounded(t *testing.T) {
	arch := cacheArchive(t, 9)
	s := NewServer(arch, WithBlobCache(3))
	for d := toplist.Day(0); d <= 9; d++ {
		if _, err := s.blobFor("alexa", d, FormatCSV, arch.Get("alexa", d)); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	n, olen := len(s.cache), s.order.Len()
	s.mu.Unlock()
	if n != 3 || olen != 3 {
		t.Fatalf("cache holds %d entries (order %d), want 3", n, olen)
	}
	// The most recent days survived; day 0 was evicted.
	s.mu.Lock()
	_, hasOld := s.cache[blobKey{"alexa", 0, FormatCSV}]
	_, hasNew := s.cache[blobKey{"alexa", 9, FormatCSV}]
	s.mu.Unlock()
	if hasOld || !hasNew {
		t.Fatalf("LRU kept the wrong end: day0=%v day9=%v", hasOld, hasNew)
	}
}

func TestBlobCacheLRUTouch(t *testing.T) {
	arch := cacheArchive(t, 3)
	s := NewServer(arch, WithBlobCache(2))
	get := func(d toplist.Day) {
		t.Helper()
		if _, err := s.blobFor("alexa", d, FormatCSV, arch.Get("alexa", d)); err != nil {
			t.Fatal(err)
		}
	}
	get(0)
	get(1)
	get(0) // touch day 0: day 1 is now the eviction candidate
	get(2)
	s.mu.Lock()
	_, has0 := s.cache[blobKey{"alexa", 0, FormatCSV}]
	_, has1 := s.cache[blobKey{"alexa", 1, FormatCSV}]
	s.mu.Unlock()
	if !has0 || has1 {
		t.Fatalf("touch did not refresh recency: day0=%v day1=%v", has0, has1)
	}
}

// TestBlobCacheSingleFlight: concurrent cold requests for one document
// share one fill — every caller gets the same entry and bytes.
func TestBlobCacheSingleFlight(t *testing.T) {
	arch := cacheArchive(t, 0)
	s := NewServer(arch)
	l := arch.Get("alexa", 0)

	const n = 16
	var wg sync.WaitGroup
	entries := make([]*blobEntry, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := s.blobFor("alexa", 0, FormatGzip, l)
			if err != nil {
				t.Error(err)
				return
			}
			entries[i] = e
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if entries[i] != entries[0] {
			t.Fatal("concurrent fills produced distinct entries")
		}
	}
	s.mu.Lock()
	size := len(s.cache)
	s.mu.Unlock()
	if size != 1 {
		t.Fatalf("cache holds %d entries after single-flight fill, want 1", size)
	}
}

// TestBlobCacheNeverServesStale: entries are validated by the slot's
// immutable list pointer, so a repairing Put (or a hot swap resolving
// to a different store) yields fresh bytes — the poisoned cache entry
// for the old generation is replaced, never served.
func TestBlobCacheNeverServesStale(t *testing.T) {
	arch := cacheArchive(t, 0)
	s := NewServer(arch)

	before, err := s.blobFor("alexa", 0, FormatCSV, arch.Get("alexa", 0))
	if err != nil {
		t.Fatal(err)
	}

	// Repair the slot: same key, new immutable list.
	if err := arch.Put("alexa", 0, toplist.New([]string{"repaired.com"})); err != nil {
		t.Fatal(err)
	}
	after, err := s.blobFor("alexa", 0, FormatCSV, arch.Get("alexa", 0))
	if err != nil {
		t.Fatal(err)
	}
	if after == before {
		t.Fatal("repaired slot served the stale entry")
	}
	if bytes.Equal(after.data, before.data) {
		t.Fatal("repaired slot served stale bytes")
	}
	if !bytes.Contains(after.data, []byte("repaired.com")) {
		t.Fatalf("fresh blob missing repaired content: %q", after.data)
	}
	if after.etag == before.etag {
		t.Fatal("stale ETag survived the repair")
	}
	s.mu.Lock()
	size := len(s.cache)
	s.mu.Unlock()
	if size != 1 {
		t.Fatalf("cache holds %d entries for one slot, want 1", size)
	}
}
