package analysis

import (
	"strings"
	"testing"

	"repro/internal/providers"
)

func TestRankSeriesTracksListedDomain(t *testing.T) {
	c := ctx(t)
	top := c.Arch.Get(providers.Alexa, 0).Name(1)
	series := c.RankSeries(providers.Alexa, top)
	if len(series) != c.Arch.Days() {
		t.Fatalf("series length %d, want %d", len(series), c.Arch.Days())
	}
	if series[0] != 1 {
		t.Fatalf("day-0 rank = %d, want 1", series[0])
	}
	s := SummariseRanks(series)
	if s.Highest != 1 || s.Presence < 0.9 {
		t.Errorf("summary = %+v, want rank-1 near-full presence", s)
	}
	if s.Highest > s.Median || s.Median > s.Lowest {
		t.Errorf("summary not ordered: %+v", s)
	}
}

func TestRankSeriesUnknownDomain(t *testing.T) {
	c := ctx(t)
	series := c.RankSeries(providers.Alexa, "definitely-not-simulated.invalid")
	s := SummariseRanks(series)
	if s.Presence != 0 || s.Highest != 0 || s.Median != 0 || s.Lowest != 0 {
		t.Errorf("unknown domain summary = %+v", s)
	}
}

func TestSummariseRanksMixedSeries(t *testing.T) {
	s := SummariseRanks([]int{0, 10, 5, 0, 20, 15})
	if s.Highest != 5 || s.Lowest != 20 {
		t.Errorf("summary = %+v", s)
	}
	if s.Presence != 4.0/6.0 {
		t.Errorf("presence = %v", s.Presence)
	}
	if s.Median != 15 { // sorted listed: 5 10 15 20; index 2
		t.Errorf("median = %d", s.Median)
	}
	empty := SummariseRanks(nil)
	if empty.Presence != 0 {
		t.Errorf("empty = %+v", empty)
	}
}

func TestSparkline(t *testing.T) {
	got := Sparkline([]int{1, 500, 1000, 0}, 1000)
	runes := []rune(got)
	if len(runes) != 4 {
		t.Fatalf("sparkline %q has %d runes", got, len(runes))
	}
	if runes[0] != '█' {
		t.Errorf("rank 1 should be the tallest bar, got %q", string(runes[0]))
	}
	if runes[3] != '·' {
		t.Errorf("absent day should be '·', got %q", string(runes[3]))
	}
	if runes[1] == runes[0] {
		t.Errorf("mid rank should differ from rank 1: %q", got)
	}
	if !strings.ContainsRune(got, '▁') {
		t.Errorf("deepest rank should be shortest bar: %q", got)
	}
}

func TestSparklineDegenerate(t *testing.T) {
	if got := Sparkline(nil, 100); got != "" {
		t.Errorf("empty series = %q", got)
	}
	// listSize 0 must not panic or divide by zero.
	if got := Sparkline([]int{1}, 0); got == "" {
		t.Error("single-point series lost")
	}
}
