package toplists

import (
	"context"
	"strings"
	"testing"

	"repro/internal/toplist"
)

func TestPublicAPI(t *testing.T) {
	scale := TestScale()
	scale.Population.Days = 14
	scale.BurnInDays = 20
	study, err := Simulate(context.Background(), WithScale(scale))
	if err != nil {
		t.Fatal(err)
	}
	if study.Archive.Get(Alexa, 0) == nil ||
		study.Archive.Get(Umbrella, 0) == nil ||
		study.Archive.Get(Majestic, 0) == nil {
		t.Fatal("missing provider snapshots")
	}
	ids := ExperimentIDs()
	if len(ids) < 25 {
		t.Fatalf("only %d experiments", len(ids))
	}
	for _, id := range ids {
		if ExperimentTitle(id) == "" {
			t.Fatalf("no title for %s", id)
		}
	}
}

func TestLabRunsExperiment(t *testing.T) {
	l := NewLab(WithScale(TestScale()))
	res, err := l.Run(context.Background(), "table1")
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "ACM IMC") || !strings.Contains(out, "Total") {
		t.Fatalf("table1 render missing venues:\n%s", out)
	}
	if _, err := l.Run(context.Background(), "not-an-experiment"); err == nil {
		t.Fatal("unknown experiment should fail")
	}
	if _, err := l.Study(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamDeliversEverySnapshot(t *testing.T) {
	scale := TestScale()
	scale.Population.Days = 10
	scale.BurnInDays = 15
	got := make(map[string]int)
	var lastDay toplist.Day
	err := Stream(context.Background(), SinkFunc(func(provider string, day toplist.Day, l *toplist.List) error {
		got[provider]++
		lastDay = day
		if l.Len() != scale.ListSize {
			t.Fatalf("%s day %v: list size %d", provider, day, l.Len())
		}
		return nil
	}), WithScale(scale))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{Alexa, Umbrella, Majestic} {
		if got[p] != 10 {
			t.Fatalf("%s delivered %d days", p, got[p])
		}
	}
	if lastDay != 9 {
		t.Fatalf("last day %d", lastDay)
	}
}

func TestDefaultScaleValidates(t *testing.T) {
	if err := DefaultScale().Validate(); err != nil {
		t.Fatal(err)
	}
}
