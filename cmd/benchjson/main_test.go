package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestNormalizeStripsProcSuffixes(t *testing.T) {
	cases := map[string]string{
		"BenchmarkEngine/serial-2":        "BenchmarkEngine/serial",
		"BenchmarkEngine/barriered-2-2":   "BenchmarkEngine/barriered",
		"BenchmarkEngine/pipelined-16-16": "BenchmarkEngine/pipelined",
		"BenchmarkEngine/pipelined":       "BenchmarkEngine/pipelined",
		"BenchmarkTable1-8":               "BenchmarkTable1",
	}
	for in, want := range cases {
		if got := normalize(in); got != want {
			t.Errorf("normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func mkDoc(days, bop, allocs float64) *document {
	return &document{Results: []result{{
		Name:       "BenchmarkEngine/pipelined-2-2",
		Iterations: 3,
		NsPerOp:    1e8,
		Metrics:    map[string]float64{"days/sec": days, "B/op": bop, "allocs/op": allocs},
	}}}
}

func TestDiffPassesWithinThreshold(t *testing.T) {
	old := mkDoc(160, 15e6, 1800)
	// 20% slower, 20% more bytes: inside a 30% gate.
	cur := mkDoc(128, 18e6, 1900)
	cur.Results[0].Name = "BenchmarkEngine/pipelined-4-4" // different runner class
	var sb strings.Builder
	if n := diff(&sb, old, cur, 0.30, ""); n != 0 {
		t.Fatalf("diff flagged %d regressions within threshold:\n%s", n, sb.String())
	}
}

func TestDiffFlagsRegressions(t *testing.T) {
	old := mkDoc(160, 15e6, 1800)
	cur := mkDoc(100, 25e6, 6000) // all three metrics past 30%
	var sb strings.Builder
	if n := diff(&sb, old, cur, 0.30, ""); n != 3 {
		t.Fatalf("diff flagged %d regressions, want 3:\n%s", n, sb.String())
	}
}

func TestDiffImprovementsNeverFail(t *testing.T) {
	old := mkDoc(160, 15e6, 1800)
	cur := mkDoc(400, 4e6, 300) // large improvements everywhere
	var sb strings.Builder
	if n := diff(&sb, old, cur, 0.30, ""); n != 0 {
		t.Fatalf("diff flagged %d improvements as regressions:\n%s", n, sb.String())
	}
}

func TestDiffSkipsMissingBenchmarks(t *testing.T) {
	old := mkDoc(160, 15e6, 1800)
	cur := &document{Results: []result{{Name: "BenchmarkEngine/renamed-2", Metrics: map[string]float64{"days/sec": 1}}}}
	var sb strings.Builder
	if n := diff(&sb, old, cur, 0.30, ""); n != 0 {
		t.Fatalf("missing counterpart must skip, not fail: %d", n)
	}
	if !strings.Contains(sb.String(), "only in old artifact") {
		t.Fatalf("old-only skip not reported:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "only in new artifact") {
		t.Fatalf("new-only entry not reported:\n%s", sb.String())
	}
}

func TestParseRoundTrip(t *testing.T) {
	text := `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkEngine/serial-2   3   199026480 ns/op   170.8 days/sec   15452277 B/op   1095 allocs/op
PASS
`
	doc, err := parse(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 1 {
		t.Fatalf("parsed %d results", len(doc.Results))
	}
	r := doc.Results[0]
	if r.NsPerOp != 199026480 || r.Metrics["days/sec"] != 170.8 || r.Metrics["allocs/op"] != 1095 {
		t.Fatalf("bad parse: %+v", r)
	}
	if doc.CPU == "" || doc.GOOS != "linux" {
		t.Fatalf("header lost: %+v", doc)
	}
}

func TestDiffReportsMissingMetrics(t *testing.T) {
	old := mkDoc(160, 15e6, 1800)
	cur := mkDoc(160, 0, 0)
	delete(cur.Results[0].Metrics, "B/op")
	delete(cur.Results[0].Metrics, "allocs/op")
	var sb strings.Builder
	if n := diff(&sb, old, cur, 0.30, ""); n != 0 {
		t.Fatalf("missing metrics must skip, not fail: %d\n%s", n, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "B/op") || !strings.Contains(out, "missing from new artifact") {
		t.Fatalf("missing-metric not reported:\n%s", out)
	}
}

// TestRenameResults: -rename turns the diff into a same-run A/B gate —
// the wrapped variant takes the baseline's name (displacing the
// baseline entry in the new artifact) and is compared against the
// baseline measured in the old artifact.
func TestRenameResults(t *testing.T) {
	mk := func(hot, wrapped float64) *document {
		return &document{Results: []result{
			{Name: "BenchmarkServe/raw/hot-4", Metrics: map[string]float64{"req/sec": hot}},
			{Name: "BenchmarkServe/raw/middleware-4", Metrics: map[string]float64{"req/sec": wrapped}},
		}}
	}

	cur := mk(1000, 970) // 3% overhead
	if !renameResults(cur, "BenchmarkServe/raw/middleware", "BenchmarkServe/raw/hot") {
		t.Fatal("rename matched nothing")
	}
	if len(cur.Results) != 1 || normalize(cur.Results[0].Name) != "BenchmarkServe/raw/hot" {
		t.Fatalf("rename left %+v", cur.Results)
	}
	if cur.Results[0].Metrics["req/sec"] != 970 {
		t.Fatal("rename kept the displaced baseline instead of the wrapped variant")
	}
	var sb strings.Builder
	if n := diff(&sb, mk(1000, 970), cur, 0.05, "req/sec"); n != 0 {
		t.Fatalf("3%% overhead flagged at a 5%% gate:\n%s", sb.String())
	}

	// 8% overhead fails the same gate.
	cur = mk(1000, 920)
	renameResults(cur, "BenchmarkServe/raw/middleware", "BenchmarkServe/raw/hot")
	sb.Reset()
	if n := diff(&sb, mk(1000, 920), cur, 0.05, "req/sec"); n != 1 {
		t.Fatalf("8%% overhead passed a 5%% gate (%d):\n%s", n, sb.String())
	}

	// Unknown source name reports failure.
	if renameResults(mk(1, 1), "BenchmarkServe/nope", "BenchmarkServe/raw/hot") {
		t.Fatal("rename of a missing benchmark reported success")
	}
}
