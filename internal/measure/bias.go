package measure

// Bias marking implements the paper's Table 5 significance rule
// (footnote 6): a cell is marked as significantly exceeding (▲) or
// falling behind (▼) its base value when it deviates by more than 50 %;
// for base values over 40 %, the test is a 25 % deviation and 5σ.

// Mark classifies value against base with the paper's rule. sigma is
// the standard deviation of the value's daily series (pass 0 when a
// single-day measurement is all that exists; the σ clause then reduces
// to the percentage test).
type Mark string

// Marks.
const (
	MarkUp   Mark = "▲"
	MarkDown Mark = "▼"
	MarkSame Mark = "■"
)

// Classify applies the rule.
func Classify(value, base, sigma float64) Mark {
	if base == 0 {
		if value > 0 {
			return MarkUp
		}
		return MarkSame
	}
	threshold := 0.5
	if base > 0.40 {
		threshold = 0.25
		if sigma > 0 {
			// Additionally require a 5σ separation.
			if diff := value - base; diff > 0 {
				if diff < 5*sigma {
					if diff/base <= threshold {
						return MarkSame
					}
				}
			} else {
				if -diff < 5*sigma {
					if -diff/base <= threshold {
						return MarkSame
					}
				}
			}
		}
	}
	switch {
	case value > base*(1+threshold):
		return MarkUp
	case value < base*(1-threshold):
		return MarkDown
	default:
		return MarkSame
	}
}
