package toplist

import (
	"fmt"
	"sort"
)

// Snapshot is one provider's list on one day.
type Snapshot struct {
	Provider string
	Day      Day
	List     *List
}

// SnapshotSink receives snapshots as they are produced. It is the
// streaming contract between the simulation engine and whatever stores
// or forwards lists: Archive materialises them in memory,
// listserv.Gatekeeper publishes them over HTTP while the run is still
// going, and cmd/collectd writes them to disk. Put is called once per
// (provider, day) in day order; implementations need not be safe for
// concurrent use — the engine serialises calls.
type SnapshotSink interface {
	Put(provider string, day Day, l *List) error
}

// Archive holds daily snapshots for multiple providers over a contiguous
// day range — the analog of the paper's JOINT dataset. It implements
// Store: the engine streams into it as a SnapshotSink and readers
// consume it as a Source.
type Archive struct {
	first, last Day
	byProvider  map[string][]*List // index: day - first
	providers   []string           // insertion order
	expected    []string           // providers Complete/Missing require
}

var _ Store = (*Archive)(nil)

// NewArchive creates an empty archive spanning days [first, last].
func NewArchive(first, last Day) *Archive {
	if last < first {
		panic("toplist: archive with last < first")
	}
	return &Archive{first: first, last: last, byProvider: make(map[string][]*List)}
}

// First returns the first day covered.
func (a *Archive) First() Day { return a.first }

// Last returns the last day covered.
func (a *Archive) Last() Day { return a.last }

// Days returns the number of days covered.
func (a *Archive) Days() int { return int(a.last-a.first) + 1 }

// Providers returns provider names in insertion order.
func (a *Archive) Providers() []string {
	return append([]string(nil), a.providers...)
}

// Put stores a snapshot. Days outside the archive range or nil lists are
// rejected.
func (a *Archive) Put(provider string, day Day, l *List) error {
	if day < a.first || day > a.last {
		return fmt.Errorf("toplist: day %v outside archive range [%v,%v]", day, a.first, a.last)
	}
	if l == nil {
		return fmt.Errorf("toplist: nil list")
	}
	lists, ok := a.byProvider[provider]
	if !ok {
		lists = make([]*List, a.Days())
		a.byProvider[provider] = lists
		a.providers = append(a.providers, provider)
	}
	lists[int(day-a.first)] = l
	return nil
}

// Get returns the snapshot for provider on day, or nil if absent.
func (a *Archive) Get(provider string, day Day) *List {
	lists, ok := a.byProvider[provider]
	if !ok || day < a.first || day > a.last {
		return nil
	}
	return lists[int(day-a.first)]
}

// Expect declares the providers the archive must contain for
// Complete to hold; Missing reports gaps against this set. Calling it
// again replaces the previous expectation. Without it, Complete and
// Missing only consider providers that have actually been inserted.
func (a *Archive) Expect(providers ...string) {
	a.expected = append([]string(nil), providers...)
}

// Expected returns the declared provider set (nil when none was
// declared).
func (a *Archive) Expected() []string {
	return append([]string(nil), a.expected...)
}

// Missing returns one stub Snapshot (nil List) for every (provider,
// day) slot that should hold a list but does not: every day of every
// inserted provider, plus — when Expect was called — every day of each
// expected provider that was never inserted at all. The result is
// ordered by provider (expected set first, in declared order, then any
// extra inserted providers in insertion order) and day ascending. Note
// an archive with no insertions and no expectations has nothing it
// knows to be owed: Missing() is empty there even though Complete() is
// false (which additionally requires at least one provider).
func (a *Archive) Missing() []Snapshot {
	var out []Snapshot
	seen := make(map[string]bool, len(a.expected))
	scan := func(p string) {
		lists := a.byProvider[p]
		if lists == nil {
			for d := a.first; d <= a.last; d++ {
				out = append(out, Snapshot{Provider: p, Day: d})
			}
			return
		}
		for i, l := range lists {
			if l == nil {
				out = append(out, Snapshot{Provider: p, Day: a.first + Day(i)})
			}
		}
	}
	for _, p := range a.expected {
		seen[p] = true
		scan(p)
	}
	for _, p := range a.providers {
		if !seen[p] {
			scan(p)
		}
	}
	return out
}

// Complete reports whether the archive holds every snapshot it should:
// no Missing slots, and at least one provider present. Note the
// contract: without a prior Expect call this only guarantees that the
// providers *inserted so far* are gap-free — a generator that never
// inserted a provider at all goes undetected. Callers that know the
// full provider set (the engine does) should declare it with Expect so
// absent providers count as incomplete too.
func (a *Archive) Complete() bool {
	return len(a.byProvider) > 0 && len(a.Missing()) == 0
}

// EachDay calls fn for every day in range, in order.
func (a *Archive) EachDay(fn func(Day)) {
	for d := a.first; d <= a.last; d++ {
		fn(d)
	}
}

// SortedProviders returns provider names sorted alphabetically (stable
// presentation order for reports).
func (a *Archive) SortedProviders() []string {
	out := a.Providers()
	sort.Strings(out)
	return out
}
