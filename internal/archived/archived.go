// Package archived serves a snapshot archive over HTTP as a
// versioned, read-only wire API — the network half of the
// toplist.Source abstraction. Anything implementing Source can be
// mounted: an in-memory toplist.Archive, a durable toplist.DiskStore,
// or a listserv.Gatekeeper view of a still-publishing collection. The
// client side is toplist.OpenRemote, which turns a served archive back
// into a Source, so analyses and experiment labs run against a remote
// archive exactly as they do against a local one.
//
// The wire protocol is defined once, in internal/toplist (the
// RemoteAPIPrefix path helpers and the RemoteManifest document); this
// package only binds it to an http.Handler:
//
//	GET /archive/v1/manifest                    RemoteManifest (JSON)
//	GET /archive/v1/days                        JSON array of ISO dates
//	GET /archive/v1/providers                   JSON array of names
//	GET /archive/v1/snapshots/{provider}/{day}  gzip-compressed CSV
//
// Snapshot documents are byte-for-byte the gzip CSV a DiskStore keeps
// on disk, served as Content-Encoding: gzip with a strong content-hash
// ETag and a Last-Modified of the provider's publication instant, so
// conditional and range requests behave like a static mirror of the
// archive directory. When the source implements toplist.RawSource
// (DiskStore does), the bytes are a verbatim copy of the stored file —
// the serving fast path: no decode, no re-encode, ETag straight from
// the hash the manifest persisted at Put time. Other sources
// (in-memory archives, gatekept live views) fall back to encoding the
// decoded list with the same deterministic encoder, so the wire bytes
// are identical on both paths.
//
// Absent snapshots are a plain 404 — exactly the nil Source.Get
// already returns for them. Corrupt snapshots differ by path: the
// decode path cannot tell them from absent (its own Get is nil → 404),
// but the raw path refuses them with a 500 — a server holding bytes it
// knows cannot decode must fail loudly rather than 200-with-garbage,
// and must not silently re-encode what its own store rejects. The
// client maps both to nil; it does not retry the 500 (the verdict is
// the store's, not the connection's).
//
// cmd/toplistd mounts this API with -serve-archive; cmd/collectd can
// fill collection gaps from a peer serving it (-peer).
package archived

import (
	"bytes"
	"compress/gzip"
	"container/list"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"time"

	servecore "repro/internal/serve"
	"repro/internal/toplist"
)

// scaler is implemented by sources that know the scale that produced
// them (toplist.DiskStore does, via its manifest); the wire manifest
// passes the name through to remote consumers.
type scaler interface {
	Scale() string
}

// slotLister is implemented by sources that can enumerate their stored
// slots and per-slot content hashes without I/O (toplist.DiskStore and
// pack.Pack both can). It is what lets the wire manifest carry the
// Snapshots count and the Content fingerprint — the fields that make
// the manifest ETag change whenever any slot is filled or repaired, so
// a mirror's conditional revalidation is a sound "anything to copy?"
// probe. Sources without it (in-memory archives, gatekept live views)
// simply omit the fields.
type slotLister interface {
	Has(provider string, day toplist.Day) bool
	RawHash(provider string, day toplist.Day) string
}

// Server publishes a toplist.Source over the archive wire API. It
// implements http.Handler and is safe for concurrent use.
//
// Snapshot documents are cached per (provider, day) in a bounded LRU
// (WithBlobCache) holding the compressed bytes actually sent on the
// wire. On the raw fast path those are the source's stored bytes,
// keyed by the content hash the store persisted at Put time: a cache
// hit is valid exactly as long as the store reports the same hash, so
// a DiskStore Put repairing a slot (new hash) misses and re-reads
// instead of serving stale bytes. On the encode fallback they are the
// re-encoded document, keyed by the *toplist.List pointer it encoded —
// lists are immutable, so the same reasoning applies with pointer
// identity in place of the hash. Either way a long-running daemon
// serving a large archive holds at most the cache bound, not every
// blob it ever served.
type Server struct {
	src toplist.Source
	mux *http.ServeMux

	noRaw bool // WithoutRawFastPath

	mu       sync.Mutex
	blobs    map[blobKey]*blobEntry
	order    *list.List // LRU: front = most recent; values are blobKey
	capacity int
}

// view resolves the source this request is served from — a stable
// per-request snapshot when src is a serve.SwappableSource — and its
// raw fast path (nil when the snapshot is not a RawSource, or the fast
// path is disabled). Resolving once per request means a hot swap
// landing mid-request cannot tear it: the manifest's day range, the
// blob bytes, and the ETag all come from one archive generation.
func (s *Server) view() (toplist.Source, toplist.RawSource) {
	src := servecore.Snapshot(s.src)
	if s.noRaw {
		return src, nil
	}
	raw, _ := src.(toplist.RawSource)
	return src, raw
}

type blobKey struct {
	provider string
	day      toplist.Day
}

// blobEntry is one snapshot's blob slot. The first request for a
// (provider, day) installs the entry and fills it outside the lock —
// a raw store read on the fast path, a WriteCSV+gzip pass on the
// fallback; concurrent requests for the same snapshot wait on ready
// instead of each re-running the fill — the server-side analog of
// DiskStore.Get's single-flight decode. Exactly one of list/hash is
// set, identifying which path filled the entry and what validates a
// hit (see Server).
type blobEntry struct {
	list  *toplist.List // encode path: the list these bytes encode
	hash  string        // raw path: the persisted content hash of these bytes
	ready chan struct{} // closed once data/etag (or err) are final
	data  []byte
	etag  string
	err   error
	elem  *list.Element
}

// Option configures a Server.
type Option func(*Server)

// WithBlobCache bounds the snapshot blob LRU cache to n documents
// (default 256). Each entry holds one compressed document (plus, on
// the encode path, a reference to its decoded list), so the bound is
// what keeps a daemon serving a huge archive from growing to the
// archive's full size; size it to the working set remote readers
// actually sweep.
func WithBlobCache(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.capacity = n
		}
	}
}

// WithoutRawFastPath forces the encode fallback even when the source
// implements toplist.RawSource. The wire bytes are identical either
// way (the equivalence tests pin it); this exists so benchmarks and
// tests can run the two paths side by side on one store, and as an
// operational escape hatch.
func WithoutRawFastPath() Option {
	return func(s *Server) { s.noRaw = true }
}

// WithMux registers the wire-API routes on an injected mux instead of
// a private one, so a daemon can compose this API, the provider-style
// CSV routes, and /metrics on one mux behind one middleware chain.
func WithMux(mux *http.ServeMux) Option {
	return func(s *Server) { s.mux = mux }
}

// NewServer builds the handler serving src under
// toplist.RemoteAPIPrefix. Mount it at the host root (the prefix is
// part of every route), beside other handlers if desired — cmd/toplistd
// mounts it next to the provider-style publication routes. If src
// implements toplist.RawSource, snapshots are served over the raw fast
// path automatically.
func NewServer(src toplist.Source, opts ...Option) *Server {
	s := &Server{
		src:      src,
		blobs:    make(map[blobKey]*blobEntry),
		order:    list.New(),
		capacity: 256,
	}
	for _, o := range opts {
		o(s)
	}
	if s.mux == nil {
		s.mux = http.NewServeMux()
	}
	s.mux.HandleFunc("GET "+toplist.RemoteManifestPath(), s.handleManifest)
	s.mux.HandleFunc("GET "+toplist.RemoteDaysPath(), s.handleDays)
	s.mux.HandleFunc("GET "+toplist.RemoteProvidersPath(), s.handleProviders)
	s.mux.HandleFunc("GET "+toplist.RemoteAPIPrefix+"/snapshots/{provider}/{day}", s.handleSnapshot)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Manifest returns the wire manifest the server currently publishes.
// It is rebuilt per call, so a served archive that is still growing
// (ExtendTo, live publication) reports its current range. The range is
// read once, so the document is self-consistent even when an Advance
// or ExtendTo lands mid-build.
func (s *Server) Manifest() toplist.RemoteManifest {
	src, _ := s.view()
	first, last := src.First(), src.Last()
	man := toplist.RemoteManifest{
		Version:   toplist.RemoteAPIVersion,
		FirstDay:  first.String(),
		LastDay:   last.String(),
		Days:      toplist.DayCount(first, last),
		Providers: src.Providers(),
	}
	if sc, ok := src.(scaler); ok {
		man.Scale = sc.Scale()
	}
	if sl, ok := src.(slotLister); ok {
		man.Snapshots, man.Content = fingerprintSlots(sl, man.Providers, first, last)
	}
	if man.Providers == nil {
		man.Providers = []string{}
	}
	return man
}

// fingerprintSlots walks every stored slot and condenses (provider,
// day, hash) triples into a content fingerprint, plus the slot count.
// The walk is pure map/bitmap probes — no file or network I/O — so
// rebuilding it per manifest request stays cheap; an archive that
// changes in any way (slot added, slot repaired to different bytes)
// yields a different fingerprint and therefore a different manifest
// ETag.
func fingerprintSlots(sl slotLister, providers []string, first, last toplist.Day) (int, string) {
	var buf bytes.Buffer
	count := 0
	for _, p := range providers {
		for d := first; d <= last; d++ {
			if !sl.Has(p, d) {
				continue
			}
			count++
			buf.WriteString(p)
			buf.WriteByte('/')
			buf.WriteString(d.String())
			buf.WriteByte('/')
			buf.WriteString(sl.RawHash(p, d))
			buf.WriteByte('\n')
		}
	}
	if count == 0 {
		return 0, ""
	}
	return count, toplist.ContentHash(buf.Bytes())
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	// The manifest gets real conditional-request handling (unlike the
	// advisory day/provider listings): pollers following a growing
	// archive re-validate it constantly, and a 304 on an If-None-Match
	// hit costs neither body bytes nor client re-parsing. The ETag is
	// the content hash of the encoded document, so it is stable across
	// server restarts for an unchanged archive. The zero modtime keeps
	// ServeContent on ETag-only validation — there is no meaningful
	// Last-Modified for a document rebuilt per request.
	body, err := json.Marshal(s.Manifest())
	if err != nil {
		http.Error(w, "encode: "+err.Error(), http.StatusInternalServerError)
		return
	}
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("ETag", `"`+toplist.ContentHash(body)+`"`)
	http.ServeContent(w, r, "manifest.json", time.Time{}, bytes.NewReader(body))
}

func (s *Server) handleDays(w http.ResponseWriter, r *http.Request) {
	src, _ := s.view()
	days := []string{}
	first, last := src.First(), src.Last()
	for d := first; d <= last; d++ {
		days = append(days, d.String())
	}
	writeJSON(w, days)
}

func (s *Server) handleProviders(w http.ResponseWriter, r *http.Request) {
	src, _ := s.view()
	providers := src.Providers()
	if providers == nil {
		providers = []string{}
	}
	writeJSON(w, providers)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	provider := r.PathValue("provider")
	day, err := toplist.ParseDay(r.PathValue("day"))
	if err != nil {
		http.Error(w, "bad date: "+r.PathValue("day"), http.StatusBadRequest)
		return
	}
	src, raw := s.view()
	// Raw fast path: the store has the wire bytes and their persisted
	// hash — serve a verbatim copy, no decode, no encode. The hash
	// probe is what routes: "" means absent or written before hashes
	// existed, both of which the decode path below answers.
	if raw != nil {
		if hash := raw.RawHash(provider, day); hash != "" {
			b, err := s.rawBlobFor(raw, provider, day, hash)
			switch {
			case err == nil:
				s.serveBlob(w, r, day, b)
				return
			case errors.Is(err, toplist.ErrCorruptSnapshot):
				// Refuse, loudly. Serving the stored bytes would be
				// 200-with-garbage; quietly falling back to re-encoding
				// what the store itself rejects would hide the damage
				// from operators. The 500 is final on the client side
				// (not retried): the verdict is the store's, and it
				// stands until a Put repairs the slot.
				http.Error(w, "snapshot is corrupt on this archive", http.StatusInternalServerError)
				return
			case errors.Is(err, errRawRaced):
				// The slot changed between the hash probe and the read;
				// the decode path serves whatever is current.
			default:
				http.Error(w, "read: "+err.Error(), http.StatusInternalServerError)
				return
			}
		}
	}
	list := src.Get(provider, day)
	if list == nil {
		// Absent and corrupt are the same status on this path:
		// Source.Get is nil for both, and the client memoizes the nil
		// either way. (Only the raw path above can tell them apart.)
		http.NotFound(w, r)
		return
	}
	b, err := s.blobFor(provider, day, list)
	if err != nil {
		http.Error(w, "encode: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.serveBlob(w, r, day, b)
}

// serveBlob writes one snapshot document. The bytes are the stored
// gzip CSV on both paths, declared as Content-Encoding: gzip over
// text/csv: a plain HTTP consumer (browser, curl) transparently
// receives CSV, while archive-aware clients (toplist.Remote sends
// Accept-Encoding: gzip itself) take the compressed document verbatim.
// ServeContent supplies the conditional-request handling — the
// content-hash ETag answers If-None-Match with 304, and because the
// hash is persisted in the store manifest, the ETag is stable across
// server restarts.
func (s *Server) serveBlob(w http.ResponseWriter, r *http.Request, day toplist.Day, b *blobEntry) {
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.Header().Set("Content-Encoding", "gzip")
	w.Header().Set("ETag", b.etag)
	// Snapshot documents are immutable in the only sense that matters
	// to a cache: a (provider, day) slot's bytes are produced by a
	// deterministic encoder, so they only ever change when a repair
	// restores the identical document. Caches and mirrors may pin them
	// for as long as they like — it is the manifest, which must always
	// revalidate (Cache-Control: no-cache there), that says whether
	// anything changed.
	w.Header().Set("Cache-Control", "public, max-age=31536000, immutable")
	w.Header().Set("X-Toplist-Day", day.String())
	// Same publication instant the provider-style routes use: 00:00 UTC
	// of the day after the data day.
	published := day.Date().Add(24 * time.Hour)
	http.ServeContent(w, r, day.String()+".csv", published, bytes.NewReader(b.data))
}

// errRawRaced marks a raw read that found no bytes for a slot whose
// hash probe just said there were some — a Put landed in between. The
// handler falls back to the decode path, which serves current state.
var errRawRaced = errors.New("archived: raw read raced a store write")

// rawBlobFor returns the stored document for (provider, day), reusing
// the cached copy while the store still reports the same persisted
// hash (a repairing Put changes the hash, so a stale blob misses and
// the slot is re-read). Fills are single-flight like encodes; a raw
// read error — including the store refusing a corrupt slot — is not
// memoized here (the store memoizes its own verdicts, so re-probes are
// cheap and a repair is picked up immediately).
func (s *Server) rawBlobFor(rs toplist.RawSource, provider string, day toplist.Day, hash string) (*blobEntry, error) {
	key := blobKey{provider, day}
	s.mu.Lock()
	if e, ok := s.blobs[key]; ok && e.hash == hash {
		s.order.MoveToFront(e.elem)
		s.mu.Unlock()
		<-e.ready
		return e, e.err
	}
	e := s.installLocked(key, &blobEntry{hash: hash, ready: make(chan struct{})})
	s.mu.Unlock()

	raw, err := rs.GetRaw(provider, day)
	if err == nil && raw == nil {
		err = errRawRaced
	}
	if err != nil {
		e.err = err
		s.dropEntry(key, e)
		close(e.ready)
		return nil, err
	}
	e.data, e.etag = raw.Data, `"`+raw.Hash+`"`
	close(e.ready)
	return e, nil
}

// blobFor returns the encoded document for l, reusing the cached
// encoding when the source still returns the same immutable list.
// Encodes are single-flight: concurrent cold requests for one snapshot
// share a single WriteCSV+gzip pass.
func (s *Server) blobFor(provider string, day toplist.Day, l *toplist.List) (*blobEntry, error) {
	key := blobKey{provider, day}
	s.mu.Lock()
	if e, ok := s.blobs[key]; ok && e.list == l {
		s.order.MoveToFront(e.elem)
		s.mu.Unlock()
		<-e.ready
		// Encode failures are not memoized; the entry was removed and
		// the next request re-encodes (it may well succeed — the list
		// is immutable but memory pressure is not).
		return e, e.err
	}
	e := s.installLocked(key, &blobEntry{list: l, ready: make(chan struct{})})
	s.mu.Unlock()

	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	err := toplist.WriteCSV(zw, l)
	if cerr := zw.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		e.err = err
		s.dropEntry(key, e)
		close(e.ready)
		return nil, err
	}
	e.data, e.etag = buf.Bytes(), `"`+toplist.ContentHash(buf.Bytes())+`"`
	close(e.ready)
	return e, nil
}

// installLocked inserts e for key — replacing any stale entry for a
// since-changed slot — and trims the LRU to capacity; callers hold
// s.mu and fill the entry outside the lock.
func (s *Server) installLocked(key blobKey, e *blobEntry) *blobEntry {
	if old, ok := s.blobs[key]; ok {
		s.order.Remove(old.elem)
	}
	e.elem = s.order.PushFront(key)
	s.blobs[key] = e
	for len(s.blobs) > s.capacity {
		back := s.order.Back()
		if back == nil {
			break
		}
		evict := back.Value.(blobKey)
		s.order.Remove(back)
		delete(s.blobs, evict)
	}
	return e
}

// dropEntry removes e from the cache after a failed fill, if it is
// still the entry for key (eviction or replacement may have raced).
func (s *Server) dropEntry(key blobKey, e *blobEntry) {
	s.mu.Lock()
	if cur, ok := s.blobs[key]; ok && cur == e {
		delete(s.blobs, key)
		s.order.Remove(e.elem)
	}
	s.mu.Unlock()
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	// The manifest governs what a client believes the archive covers;
	// a growing archive must not be pinned by intermediaries.
	w.Header().Set("Cache-Control", "no-cache")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing to do beyond dropping the conn.
		return
	}
}
