package listserv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/toplist"
)

// Client downloads list snapshots from a Server (or anything that
// serves the same routes). It retries transient failures with jittered
// exponential backoff, honours context cancellation, and keeps a
// per-URL validator cache so repeat downloads of an unchanged snapshot
// cost one conditional request.
type Client struct {
	baseURL string
	httpc   *http.Client
	format  Format

	maxAttempts int
	baseBackoff time.Duration
	maxBody     int64
	sleep       func(context.Context, time.Duration) error
	jitter      func() float64

	mu    sync.Mutex
	etags map[string]cachedDoc
}

type cachedDoc struct {
	etag string
	list *toplist.List
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(h *http.Client) ClientOption { return func(c *Client) { c.httpc = h } }

// WithFormat selects the download encoding (default FormatZip, the
// Alexa publication format).
func WithFormat(f Format) ClientOption { return func(c *Client) { c.format = f } }

// WithMaxAttempts bounds the number of tries per download (default 4).
func WithMaxAttempts(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.maxAttempts = n
		}
	}
}

// WithBaseBackoff sets the first retry delay (default 250ms; doubled
// per attempt with ±50% jitter).
func WithBaseBackoff(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.baseBackoff = d
		}
	}
}

// WithMaxBodyBytes caps accepted response bodies (default 256 MiB).
func WithMaxBodyBytes(n int64) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.maxBody = n
		}
	}
}

// withSleep replaces the backoff sleeper; tests use it to run
// instantly while still observing the requested delays.
func withSleep(f func(context.Context, time.Duration) error) ClientOption {
	return func(c *Client) { c.sleep = f }
}

// NewClient builds a Client rooted at baseURL (e.g. the URL of an
// httptest server wrapping a Server).
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{
		baseURL:     strings.TrimRight(baseURL, "/"),
		httpc:       &http.Client{Timeout: 30 * time.Second},
		format:      FormatZip,
		maxAttempts: 4,
		baseBackoff: 250 * time.Millisecond,
		maxBody:     256 << 20,
		jitter:      rand.Float64,
	}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}
	c.etags = make(map[string]cachedDoc)
	for _, o := range opts {
		o(c)
	}
	return c
}

// StatusError reports a non-retryable HTTP failure.
type StatusError struct {
	URL  string
	Code int
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("listserv: GET %s: status %d", e.URL, e.Code)
}

// IsNotFound reports whether err is a 404 StatusError — the signal a
// Mirror uses to distinguish "snapshot not published" from an outage.
func IsNotFound(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusNotFound
}

// Index fetches the server's publication index.
func (c *Client) Index(ctx context.Context) (*Index, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/v1/index", nil)
	if err != nil {
		return nil, err
	}
	var idx Index
	err = c.retry(ctx, func() error {
		resp, err := c.httpc.Do(req.Clone(ctx))
		if err != nil {
			return &transientError{err}
		}
		defer drain(resp.Body)
		if err := classifyStatus(req.URL.String(), resp.StatusCode); err != nil {
			return err
		}
		idx = Index{}
		if err := decodeJSON(resp.Body, c.maxBody, &idx); err != nil {
			return &transientError{err}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &idx, nil
}

// FetchDay downloads provider's snapshot for the given day.
func (c *Client) FetchDay(ctx context.Context, provider string, day toplist.Day) (*toplist.List, error) {
	return c.fetch(ctx, SnapshotPath(provider, day, c.format))
}

// FetchLatest downloads provider's most recent snapshot.
func (c *Client) FetchLatest(ctx context.Context, provider string) (*toplist.List, error) {
	return c.fetch(ctx, LatestPath(provider, c.format))
}

func (c *Client) fetch(ctx context.Context, path string) (*toplist.List, error) {
	url := c.baseURL + path
	var list *toplist.List
	err := c.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		c.mu.Lock()
		cached, haveCached := c.etags[url]
		c.mu.Unlock()
		if haveCached {
			req.Header.Set("If-None-Match", cached.etag)
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			return &transientError{err}
		}
		defer drain(resp.Body)
		if haveCached && resp.StatusCode == http.StatusNotModified {
			list = cached.list
			return nil
		}
		if err := classifyStatus(url, resp.StatusCode); err != nil {
			return err
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, c.maxBody+1))
		if err != nil {
			return &transientError{err}
		}
		if int64(len(body)) > c.maxBody {
			return fmt.Errorf("listserv: GET %s: body exceeds %d bytes", url, c.maxBody)
		}
		l, err := Decode(body, c.format)
		if err != nil {
			// A truncated or corrupt document can be a transfer
			// artifact; retrying is the longitudinal-collection
			// behaviour (re-download before declaring the day lost).
			return &transientError{err}
		}
		if etag := resp.Header.Get("ETag"); etag != "" {
			c.mu.Lock()
			c.etags[url] = cachedDoc{etag: etag, list: l}
			c.mu.Unlock()
		}
		list = l
		return nil
	})
	if err != nil {
		return nil, err
	}
	return list, nil
}

// transientError marks failures worth retrying.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

func classifyStatus(url string, code int) error {
	switch {
	case code == http.StatusOK:
		return nil
	case code >= 500 || code == http.StatusTooManyRequests:
		return &transientError{&StatusError{URL: url, Code: code}}
	default:
		return &StatusError{URL: url, Code: code}
	}
}

func (c *Client) retry(ctx context.Context, op func() error) error {
	var lastErr error
	backoff := c.baseBackoff
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("%w (last error: %v)", err, lastErr)
			}
			return err
		}
		err := op()
		if err == nil {
			return nil
		}
		var te *transientError
		if !errors.As(err, &te) {
			return err
		}
		lastErr = te.err
		if attempt >= c.maxAttempts {
			return fmt.Errorf("listserv: giving up after %d attempts: %w", attempt, lastErr)
		}
		// ±50% jitter decorrelates the retry storms a fleet of
		// collectors would otherwise synchronise into.
		d := time.Duration(float64(backoff) * (0.5 + c.jitter()))
		if err := c.sleep(ctx, d); err != nil {
			return fmt.Errorf("%w (last error: %v)", err, lastErr)
		}
		backoff *= 2
	}
}

func drain(rc io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(rc, 1<<20)) //nolint:errcheck // best-effort keepalive drain
	rc.Close()
}

func decodeJSON(r io.Reader, limit int64, v any) error {
	data, err := io.ReadAll(io.LimitReader(r, limit))
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
