package providers

// SlidingWindow maintains exact N-day sliding sums per domain with a
// ring buffer — the reference implementation the EMA approximation is
// validated against (DESIGN.md ablation). Memory is O(domains × days),
// which is why the production rankers use EMAs instead.
type SlidingWindow struct {
	days  int
	ring  [][]float64
	sum   []float64
	head  int
	count int
}

// NewSlidingWindow builds a window over n domains and the given number
// of days.
func NewSlidingWindow(domains, days int) *SlidingWindow {
	w := &SlidingWindow{
		days: days,
		ring: make([][]float64, days),
		sum:  make([]float64, domains),
	}
	for i := range w.ring {
		w.ring[i] = make([]float64, domains)
	}
	return w
}

// Push adds one day of signal and evicts the oldest day once the
// window is full.
func (w *SlidingWindow) Push(signal []float64) {
	slot := w.ring[w.head]
	if w.count == w.days {
		for i, old := range slot {
			w.sum[i] -= old
		}
	}
	copy(slot, signal)
	for i, v := range slot {
		w.sum[i] += v
	}
	w.head = (w.head + 1) % w.days
	if w.count < w.days {
		w.count++
	}
}

// Sums returns the current per-domain window sums (shared slice; do not
// modify).
func (w *SlidingWindow) Sums() []float64 { return w.sum }

// Filled reports whether the window has seen at least `days` pushes.
func (w *SlidingWindow) Filled() bool { return w.count == w.days }
