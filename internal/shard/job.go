package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/population"
	"repro/internal/providers"
	"repro/internal/traffic"
)

// Job is the complete, self-contained description of a generation run a
// worker needs to participate: the world configuration (a worker
// rebuilds the identical world deterministically from it — worlds are
// never shipped over the wire), the generator options that shape every
// EMA update, and the coordinator's traffic-model parameter fingerprint
// so silent calibration skew between builds becomes an explicit open
// refusal instead of a wrong archive.
//
// Injectors are deliberately absent: injections only ever touch the
// coordinator-owned per-name extra maps (see Generator.MergeDay), so
// workers compute injection-free per-record state regardless of what
// the coordinator layers on top.
type Job struct {
	// Protocol pins the /shard/v1 protocol version; a worker refuses a
	// job from a different one.
	Protocol int `json:"protocol"`
	// Population rebuilds the world.
	Population population.Config `json:"population"`

	// Generator options (the providers.Options scalars, minus injectors).
	ListSize              int      `json:"list_size"`
	BurnInDays            int      `json:"burn_in_days"`
	AlexaChangeDay        int      `json:"alexa_change_day"`
	AlexaAlphaPre         float64  `json:"alexa_alpha_pre"`
	AlexaAlphaPost        float64  `json:"alexa_alpha_post"`
	UmbrellaAlpha         float64  `json:"umbrella_alpha"`
	MajesticAlpha         float64  `json:"majestic_alpha"`
	UmbrellaVolumeRanking bool     `json:"umbrella_volume_ranking"`
	Enabled               []string `json:"enabled,omitempty"`

	// Model is the coordinator's traffic.Model.Fingerprint(); the worker
	// compares it against the model it builds from Population.
	Model string `json:"model"`
}

// JobFor derives the job describing a run of the given world config,
// options, and model.
func JobFor(pop population.Config, opts providers.Options, m *traffic.Model) Job {
	return Job{
		Protocol:              ProtocolVersion,
		Population:            pop,
		ListSize:              opts.ListSize,
		BurnInDays:            opts.BurnInDays,
		AlexaChangeDay:        opts.AlexaChangeDay,
		AlexaAlphaPre:         opts.AlexaAlphaPre,
		AlexaAlphaPost:        opts.AlexaAlphaPost,
		UmbrellaAlpha:         opts.UmbrellaAlpha,
		MajesticAlpha:         opts.MajesticAlpha,
		UmbrellaVolumeRanking: opts.UmbrellaVolumeRanking,
		Enabled:               opts.Enabled,
		Model:                 m.Fingerprint(),
	}
}

// Options reconstructs the worker-side generator options. No injectors,
// by design.
func (j Job) Options() providers.Options {
	return providers.Options{
		ListSize:              j.ListSize,
		BurnInDays:            j.BurnInDays,
		AlexaChangeDay:        j.AlexaChangeDay,
		AlexaAlphaPre:         j.AlexaAlphaPre,
		AlexaAlphaPost:        j.AlexaAlphaPost,
		UmbrellaAlpha:         j.UmbrellaAlpha,
		MajesticAlpha:         j.MajesticAlpha,
		UmbrellaVolumeRanking: j.UmbrellaVolumeRanking,
		Enabled:               j.Enabled,
	}
}

// Validate reports whether the job is internally consistent and at this
// protocol version.
func (j Job) Validate() error {
	if j.Protocol != ProtocolVersion {
		return fmt.Errorf("shard: job protocol %d, worker speaks %d", j.Protocol, ProtocolVersion)
	}
	if err := j.Population.Validate(); err != nil {
		return err
	}
	if err := j.Options().Validate(); err != nil {
		return err
	}
	if j.Model == "" {
		return fmt.Errorf("shard: job missing model fingerprint")
	}
	return nil
}

// Fingerprint is a stable content hash of the whole job; workers key
// sessions and world caches by it.
func (j Job) Fingerprint() string {
	b, err := json.Marshal(j)
	if err != nil {
		// Job is plain data; Marshal cannot fail on it.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}
