// Package pack implements the packed archive format: a whole
// multi-provider snapshot archive — the paper's JOINT dataset — as one
// immutable file, readable through the same toplist.Source contract as
// every other backend.
//
// A DiskStore keeps one gzip CSV per (provider, day); at production
// horizons that is tens of thousands of files (a 10-year, 20-provider
// ecosystem is ~73k), which filesystems, copies, and object stores all
// handle badly. A pack file concatenates exactly those per-snapshot
// documents into a single blob and appends a central directory that
// doubles as the manifest, so the archive ships, replicates, and
// verifies as one object:
//
//	offset 0        header   8-byte magic, format version baked in
//	                blobs    per-(provider,day) gzip CSV snapshot
//	                         documents, byte-identical to what a
//	                         DiskStore stores and the wire API serves,
//	                         concatenated in directory order
//	size-40-dirLen  dir      JSON central directory: scale, day range,
//	                         provider order, and one
//	                         offset/length/content-hash record per slot
//	size-40         footer   8-byte magic + directory offset, length,
//	                         and content hash (sha256/128)
//
// Because every slot record carries the same content hash a DiskStore
// manifest persists, a reader can verify any byte range it fetches
// without trusting the transport — which is what makes the format
// servable over dumb blob storage: pack.Open reads it from any
// io.ReaderAt (a local file, mmap, a test buffer), and pack.OpenURL
// reads it over plain HTTP Range requests from any static file server.
// The directory is parsed eagerly; snapshot blobs are read lazily,
// verified against their directory hash, and decoded through a bounded
// LRU cache — the zip-VFS serving idea applied to snapshot archives.
//
// pack.Write builds the file from any toplist.Source (raw byte fast
// path when the source is a toplist.RawSource); `toplists pack` /
// `toplists unpack` round-trip a DiskStore through it byte-identically,
// and `toplistd -serve-pack` serves one over the archive wire API
// without unpacking.
package pack

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/toplist"
)

// packMagic opens every pack file. The final byte is the format
// version: a reader that does not recognise it must refuse the file
// outright rather than guess at the layout.
var packMagic = [8]byte{'T', 'L', 'P', 'A', 'C', 'K', 0, formatVersion}

// footerMagic opens the fixed-size footer at the end of the file — the
// trailer a reader locates first, since only the end of a pack file is
// at a known offset.
var footerMagic = [8]byte{'T', 'L', 'P', 'K', 'D', 'I', 'R', formatVersion}

// formatVersion is the pack layout this build reads and writes.
const formatVersion = 1

// headerSize is the fixed prefix before the first blob.
const headerSize = 8

// footerSize is the fixed trailer: footerMagic, directory offset
// (uint64 LE), directory length (uint64 LE), and the first 16 bytes of
// the directory's SHA-256.
const footerSize = 8 + 8 + 8 + 16

// directoryVersion is the central-directory document version, checked
// independently of the container magic (the JSON can evolve without
// the byte layout changing).
const directoryVersion = 1

// ErrNotPack reports that the bytes handed to Open are not a pack file
// this build understands — wrong magic, impossible geometry, or a
// corrupt or unparseable central directory.
var ErrNotPack = errors.New("pack: not a packed archive (or unsupported version)")

// directory is the central directory at the tail of a pack file: the
// archive manifest (scale, day range, provider order, expected
// provider set) plus one locator record per stored snapshot. It is the
// single source of truth a reader parses eagerly; everything else in
// the file is reached lazily through it.
type directory struct {
	Version   int      `json:"version"`
	Scale     string   `json:"scale,omitempty"`
	FirstDay  string   `json:"first_day"`
	LastDay   string   `json:"last_day"`
	Providers []string `json:"providers"`          // insertion order
	Expected  []string `json:"expected,omitempty"` // providers Complete requires
	Snapshots []record `json:"snapshots"`
}

// record locates and authenticates one stored snapshot blob.
type record struct {
	Provider string `json:"provider"`
	Day      string `json:"day"`
	Offset   int64  `json:"offset"`
	Length   int64  `json:"length"`
	// Hash is toplist.ContentHash of the blob bytes — the same value a
	// DiskStore manifest persists for the same document, and the wire
	// ETag an archive server derives from it. Every read of the blob is
	// checked against it.
	Hash string `json:"hash"`
}

// encodeFooter renders the fixed trailer for a directory written at
// dirOff covering dirLen bytes whose SHA-256 starts with dirHash.
func encodeFooter(dirOff, dirLen int64, dirHash [16]byte) []byte {
	buf := make([]byte, footerSize)
	copy(buf, footerMagic[:])
	binary.LittleEndian.PutUint64(buf[8:], uint64(dirOff))
	binary.LittleEndian.PutUint64(buf[16:], uint64(dirLen))
	copy(buf[24:], dirHash[:])
	return buf
}

// parseFooter validates the trailer bytes and returns the directory
// geometry. size is the whole file length, used to bound-check the
// claimed offsets before anything is allocated or fetched — a corrupt
// or hostile footer must fail here, cleanly, not via a huge allocation
// or an out-of-range read.
func parseFooter(buf []byte, size int64) (dirOff, dirLen int64, dirHash [16]byte, err error) {
	if len(buf) != footerSize || !bytes.Equal(buf[:8], footerMagic[:]) {
		return 0, 0, dirHash, fmt.Errorf("%w: bad footer", ErrNotPack)
	}
	off := binary.LittleEndian.Uint64(buf[8:])
	n := binary.LittleEndian.Uint64(buf[16:])
	// The directory must sit strictly between the header and the
	// footer, and end exactly where the footer begins: uint64 arithmetic
	// first, so overflowing values cannot sneak past the int64 casts.
	if off < headerSize || n > uint64(size) || off > uint64(size) || off+n != uint64(size)-footerSize {
		return 0, 0, dirHash, fmt.Errorf("%w: footer claims impossible directory geometry", ErrNotPack)
	}
	copy(dirHash[:], buf[24:])
	return int64(off), int64(n), dirHash, nil
}

// parseDirectory authenticates and decodes the central directory,
// returning it plus the parsed day range.
func parseDirectory(raw []byte, wantHash [16]byte) (*directory, toplist.Day, toplist.Day, error) {
	sum := sha256.Sum256(raw)
	if !bytes.Equal(sum[:16], wantHash[:]) {
		return nil, 0, 0, fmt.Errorf("%w: central directory does not match footer hash", ErrNotPack)
	}
	var dir directory
	if err := json.Unmarshal(raw, &dir); err != nil {
		return nil, 0, 0, fmt.Errorf("%w: central directory: %v", ErrNotPack, err)
	}
	if dir.Version != directoryVersion {
		return nil, 0, 0, fmt.Errorf("%w: directory version %d (this build reads %d)", ErrNotPack, dir.Version, directoryVersion)
	}
	first, err := toplist.ParseDay(dir.FirstDay)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("%w: bad first_day: %v", ErrNotPack, err)
	}
	last, err := toplist.ParseDay(dir.LastDay)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("%w: bad last_day: %v", ErrNotPack, err)
	}
	if last < first {
		return nil, 0, 0, fmt.Errorf("%w: last_day before first_day", ErrNotPack)
	}
	return &dir, first, last, nil
}
