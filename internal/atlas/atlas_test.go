package atlas

import (
	"testing"

	"repro/internal/population"
	"repro/internal/providers"
	"repro/internal/traffic"
)

func model(t *testing.T) *traffic.Model {
	t.Helper()
	w, err := population.Build(population.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	return traffic.NewModel(w)
}

func gridOpts() providers.Options {
	opts := providers.DefaultOptions(20, 2500)
	opts.BurnInDays = 20
	opts.AlexaChangeDay = -1
	return opts
}

func TestSchedule(t *testing.T) {
	inj := traffic.NewInjector()
	Schedule(inj, Measurement{Target: "t.example.net", Probes: 100, QueriesPerProbe: 10, Start: 2, End: 4})
	if inj.For(1) != nil {
		t.Fatal("day 1 should be empty")
	}
	got := inj.For(3)["t.example.net"]
	if got.Clients != 100 || got.Queries != 1000 {
		t.Fatalf("injection %+v", got)
	}
	if inj.For(4) != nil {
		t.Fatal("end day exclusive")
	}
}

func TestRunGridShape(t *testing.T) {
	m := model(t)
	cells, err := RunGrid(m, GridConfig{
		Probes:      []int{100, 1000, 5000, 10000},
		Frequencies: []int{1, 100},
		Days:        16,
		Opts:        gridOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("cells %d", len(cells))
	}
	rank := func(p, f int) int {
		for _, c := range cells {
			if c.Probes == p && c.Frequency == f {
				return c.FridayRank
			}
		}
		t.Fatalf("cell %d/%d missing", p, f)
		return 0
	}
	// The paper's headline result: 10k probes at 1 query/day (10k total
	// queries) outrank 1k probes at 100 queries/day (100k total).
	r10k1 := rank(10000, 1)
	r1k100 := rank(1000, 100)
	if r10k1 == 0 {
		t.Fatal("10k probes should always enter the list")
	}
	if r1k100 != 0 && r10k1 >= r1k100 {
		t.Fatalf("probe count should dominate: 10k×1 rank %d vs 1k×100 rank %d", r10k1, r1k100)
	}
	// More probes at equal frequency always rank better (0 = unlisted,
	// treated as worst).
	for _, f := range []int{1, 100} {
		prev := 0
		for _, p := range []int{100, 1000, 5000, 10000} {
			r := rank(p, f)
			if prev != 0 && r != 0 && r >= prev {
				t.Fatalf("rank not improving with probes at freq %d: %d then %d", f, prev, r)
			}
			if prev == 0 && r != 0 {
				prev = r
			} else if r != 0 {
				prev = r
			}
		}
	}
	// Frequency helps only marginally: at 10k probes, freq 100 must not
	// be drastically better than freq 1.
	r10k100 := rank(10000, 100)
	if r10k100 != 0 && r10k1 != 0 && r10k100*20 < r10k1 {
		t.Fatalf("query volume dominates unexpectedly: %d vs %d", r10k100, r10k1)
	}
}

func TestRunGridRejectsShortRuns(t *testing.T) {
	m := model(t)
	if _, err := RunGrid(m, GridConfig{Probes: []int{10}, Frequencies: []int{1}, Days: 3, Opts: gridOpts()}); err == nil {
		t.Fatal("short run should fail")
	}
}

func TestDisappearance(t *testing.T) {
	m := model(t)
	opts := gridOpts()
	gone, err := Disappearance(m, opts, 20000, 18, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: test domains disappeared within 1–2 days of stopping.
	if gone > 3 {
		t.Fatalf("domain lingered %d days after stop", gone)
	}
}

func TestRunTTL(t *testing.T) {
	m := model(t)
	results, err := RunTTL(m, TTLConfig{
		TTLs:            []uint32{60, 300, 900, 3600, 86400},
		Probes:          5000,
		IntervalSeconds: 900,
		Days:            12,
		Opts:            gridOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results %d", len(results))
	}
	for i, r := range results {
		if r.Rank == 0 {
			t.Fatalf("TTL %d domain unlisted", r.TTL)
		}
		if r.ClientQueries == 0 || r.UpstreamQueries == 0 {
			t.Fatalf("no query accounting: %+v", r)
		}
		if r.UpstreamQueries > r.ClientQueries {
			t.Fatal("upstream cannot exceed client volume")
		}
		if i > 0 && r.UpstreamQueries > results[i-1].UpstreamQueries {
			t.Fatalf("upstream volume should fall with TTL: %d (ttl %d) after %d (ttl %d)",
				r.UpstreamQueries, r.TTL, results[i-1].UpstreamQueries, results[i-1].TTL)
		}
	}
	// Client volumes identical across TTLs.
	for _, r := range results[1:] {
		if r.ClientQueries != results[0].ClientQueries {
			t.Fatal("client volumes should match")
		}
	}
	// The rank spread must be small relative to the list (paper: <1k
	// places of 1M, i.e. 0.1%; allow 2% here for the small scale).
	spread := MaxRankSpread(results)
	if spread > 2500/50 {
		t.Fatalf("TTL rank spread %d too large", spread)
	}
}

func TestRunTTLValidates(t *testing.T) {
	m := model(t)
	if _, err := RunTTL(m, TTLConfig{Probes: 10, IntervalSeconds: 900, Days: 12, Opts: gridOpts()}); err == nil {
		t.Fatal("no TTLs should fail")
	}
}

func TestMaxRankSpread(t *testing.T) {
	if MaxRankSpread([]TTLResult{{Rank: 100}, {Rank: 0}, {Rank: 350}}) != 250 {
		t.Fatal("spread")
	}
	if MaxRankSpread(nil) != 0 {
		t.Fatal("empty spread")
	}
}

func BenchmarkRunGrid(b *testing.B) {
	w, err := population.Build(population.TestConfig())
	if err != nil {
		b.Fatal(err)
	}
	m := traffic.NewModel(w)
	cfg := GridConfig{
		Probes:      []int{100, 10000},
		Frequencies: []int{1, 100},
		Days:        12,
		Opts:        gridOpts(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunGrid(m, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
