// Package measure implements the paper's §8 measurement campaigns over
// a set of domain names: DNS record shares (NXDOMAIN, IPv6, CAA,
// CNAME), CDN detection via CNAME patterns, AS mapping via the route
// table, TLS/HSTS probing, and HTTP/2 fetches — run against the
// simulated infrastructure, with the same classification logic the
// paper applies to live scans.
package measure

import (
	"sort"

	"repro/internal/population"
	"repro/internal/simnet"
)

// Metrics are the Table 5 characteristics of one name set on one day.
type Metrics struct {
	N int
	// Shares in [0,1] of the measured set.
	NXDOMAIN float64
	IPv6     float64
	CAA      float64
	CNAME    float64
	CDN      float64
	// AS diversity (resolving names only).
	UniqueAS4   int
	UniqueAS6   int
	Top5ASShare float64
	// Web layers.
	TLS       float64 // TLS-capable share of all names
	HSTSofTLS float64 // HSTS-enabled share of TLS-capable names
	HTTP2     float64 // HTTP/2 landing-page share of all names

	// Decompositions for Fig. 7.
	CDNCounts map[uint8]int  // CDN ID -> detected count
	ASCounts  map[uint32]int // ASN -> A-record count
}

// Campaign measures name sets against a world.
type Campaign struct {
	W *population.World
}

// NewCampaign builds a campaign runner.
func NewCampaign(w *population.World) *Campaign { return &Campaign{W: w} }

// Measure runs the full §8 measurement over names on the given day.
// Following the paper's method, DNS and web probes also try the
// www-prefixed variant of each name when the raw name yields less
// (CNAME detection and TLS support are counted if either variant
// succeeds).
func (c *Campaign) Measure(names []string, day int) Metrics {
	zone := c.W.ZoneAt(day)
	prober := c.W.ProberAt(day)
	m := Metrics{
		N:         len(names),
		CDNCounts: make(map[uint8]int),
		ASCounts:  make(map[uint32]int),
	}
	if len(names) == 0 {
		return m
	}
	as4 := make(map[uint32]struct{})
	as6 := make(map[uint32]struct{})
	var nx, ipv6, caa, cname, cdn, tls, hsts, h2 int
	for _, name := range names {
		resp := zone.Lookup(name)
		if resp.RCode != simnet.RCodeNoError {
			nx++
			continue
		}
		if resp.AAAA {
			ipv6++
		}
		if resp.CAA {
			caa++
		}
		chain := resp.Chain
		if len(chain) == 0 {
			// Try the www variant for CNAME/CDN detection.
			if www, ok := c.W.ResolveWWW(name); ok {
				if wr := zone.Lookup(www); wr.RCode == simnet.RCodeNoError {
					chain = wr.Chain
				}
			}
		}
		if len(chain) > 0 {
			cname++
			if id := c.W.CDNs.Detect(chain[len(chain)-1]); id != 0 {
				cdn++
				m.CDNCounts[id]++
			}
		}
		if asn, ok := c.W.Routes.Lookup(resp.A); ok {
			as4[asn] = struct{}{}
			m.ASCounts[asn]++
			if resp.AAAA {
				as6[asn] = struct{}{}
			}
		}
		pr := prober.Probe(name)
		if !pr.TLS {
			if www, ok := c.W.ResolveWWW(name); ok {
				pr = prober.Probe(www)
			}
		}
		if pr.TLS {
			tls++
			if pr.HSTSEnabled() {
				hsts++
			}
			if pr.HTTP2 && pr.Redirects <= simnet.MaxRedirects {
				h2++
			}
		}
	}
	n := float64(len(names))
	m.NXDOMAIN = float64(nx) / n
	m.IPv6 = float64(ipv6) / n
	m.CAA = float64(caa) / n
	m.CNAME = float64(cname) / n
	m.CDN = float64(cdn) / n
	m.TLS = float64(tls) / n
	if tls > 0 {
		m.HSTSofTLS = float64(hsts) / float64(tls)
	}
	m.HTTP2 = float64(h2) / n
	m.UniqueAS4 = len(as4)
	m.UniqueAS6 = len(as6)
	m.Top5ASShare = topShare(m.ASCounts, 5)
	return m
}

// MeasureIDs measures world records by index.
func (c *Campaign) MeasureIDs(ids []uint32, day int) Metrics {
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = c.W.Domains[id].Name
	}
	return c.Measure(names, day)
}

// topShare returns the combined share of the k most common keys.
func topShare[K comparable](counts map[K]int, k int) float64 {
	if len(counts) == 0 {
		return 0
	}
	vals := make([]int, 0, len(counts))
	total := 0
	for _, v := range counts {
		vals = append(vals, v)
		total += v
	}
	sort.Sort(sort.Reverse(sort.IntSlice(vals)))
	if k > len(vals) {
		k = len(vals)
	}
	top := 0
	for _, v := range vals[:k] {
		top += v
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}

// Share is a labelled share for Fig. 7 style decompositions.
type Share struct {
	Label string
	Share float64
}

// TopCDNShares returns the k most common CDNs among detected CDN uses,
// as shares of all CDN-detected names.
func (c *Campaign) TopCDNShares(m Metrics, k int) []Share {
	return topShares(m.CDNCounts, k, func(id uint8) string { return c.W.CDNs.Name(id) })
}

// TopASShares returns the k most common origin ASes as shares of all
// A-record mappings.
func (c *Campaign) TopASShares(m Metrics, k int) []Share {
	return topShares(m.ASCounts, k, func(asn uint32) string { return c.W.ASes.Label(asn) })
}

func topShares[K comparable](counts map[K]int, k int, label func(K) string) []Share {
	type kv struct {
		key K
		n   int
	}
	all := make([]kv, 0, len(counts))
	total := 0
	for key, n := range counts {
		all = append(all, kv{key, n})
		total += n
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return label(all[i].key) < label(all[j].key)
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]Share, k)
	for i := 0; i < k; i++ {
		out[i] = Share{Label: label(all[i].key), Share: float64(all[i].n) / float64(total)}
	}
	return out
}
