package simnet

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Zone-file support: the paper's "general population" comes from the
// com/net/org TLD zone files, which list every registered domain's NS
// delegation. This writer/parser handles the subset of RFC 1035 master
// file syntax those zones use ($ORIGIN, comments, relative and absolute
// owner names, NS records), so the population sample can be exported
// and re-imported the way the original study consumed zone data.

// WriteZone emits a TLD zone file: an $ORIGIN line, an SOA comment
// header, and one NS record per registered domain. Domain names must
// all be under the origin.
func WriteZone(w io.Writer, origin string, domains []string, nameservers []string) error {
	if len(nameservers) == 0 {
		nameservers = []string{"ns1.registry.example."}
	}
	origin = strings.TrimSuffix(strings.ToLower(origin), ".")
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "$ORIGIN %s.\n", origin)
	fmt.Fprintf(bw, "; zone file for .%s (synthetic)\n", origin)
	sorted := append([]string(nil), domains...)
	sort.Strings(sorted)
	suffix := "." + origin
	for _, d := range sorted {
		d = strings.TrimSuffix(strings.ToLower(d), ".")
		if !strings.HasSuffix(d, suffix) {
			return fmt.Errorf("simnet: %q is not under origin %q", d, origin)
		}
		rel := strings.TrimSuffix(d, suffix)
		ns := nameservers[len(rel)%len(nameservers)]
		fmt.Fprintf(bw, "%s\tIN\tNS\t%s\n", rel, ns)
	}
	return bw.Flush()
}

// ParseZone reads a zone file and returns the origin and the registered
// domain names (owner + origin for relative owners), de-duplicated and
// sorted. Unknown record types are skipped; comments and blank lines
// are ignored.
func ParseZone(r io.Reader) (origin string, domains []string, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	seen := make(map[string]struct{})
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "$ORIGIN" {
			if len(fields) < 2 {
				return "", nil, fmt.Errorf("simnet: line %d: bare $ORIGIN", lineNo)
			}
			origin = strings.TrimSuffix(strings.ToLower(fields[1]), ".")
			continue
		}
		if strings.HasPrefix(fields[0], "$") {
			continue // other directives ($TTL, ...) are irrelevant here
		}
		if len(fields) < 4 {
			continue
		}
		// owner [ttl] class type rdata — accept both with and without
		// TTL; we only need NS owners.
		typeIdx := -1
		for i := 1; i < len(fields)-1; i++ {
			if strings.EqualFold(fields[i], "NS") {
				typeIdx = i
				break
			}
		}
		if typeIdx < 0 {
			continue
		}
		owner := strings.ToLower(fields[0])
		var name string
		switch {
		case owner == "@":
			name = origin
		case strings.HasSuffix(owner, "."):
			name = strings.TrimSuffix(owner, ".")
		default:
			if origin == "" {
				return "", nil, fmt.Errorf("simnet: line %d: relative owner %q before $ORIGIN", lineNo, owner)
			}
			name = owner + "." + origin
		}
		if name == "" || name == origin {
			continue
		}
		if _, dup := seen[name]; !dup {
			seen[name] = struct{}{}
			domains = append(domains, name)
		}
	}
	if err := sc.Err(); err != nil {
		return "", nil, err
	}
	sort.Strings(domains)
	return origin, domains, nil
}
