package toplists

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/engine"
)

// TestPackedAnalysisIsByteIdenticalToDiskStore is the packed-archive
// acceptance scenario: simulate once persisting to disk, pack the
// archive into one file, and run the same analysis against three read
// paths — the DiskStore, the pack opened from the local file, and the
// pack served by a plain static file server and opened over HTTP
// Range requests. All three rendered outputs must be byte-identical
// and the engine must never run on any read path: a packed file
// behind any dumb byte server is a full archive backend.
func TestPackedAnalysisIsByteIdenticalToDiskStore(t *testing.T) {
	scale := smallScale()
	dir := filepath.Join(t.TempDir(), "joint")
	packPath := filepath.Join(t.TempDir(), "joint.pack")
	ctx := context.Background()

	// Simulate once, teeing to disk, then pack the result.
	simLab := NewLab(WithScale(scale), WithArchiveDir(dir))
	if _, err := simLab.Run(ctx, "table5"); err != nil {
		t.Fatal(err)
	}
	store, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePack(packPath, store); err != nil {
		t.Fatal(err)
	}

	runsBefore := engine.RunCount()

	// Read path 1: the DiskStore directly.
	diskLab := NewLab(WithScale(scale), WithSource(store))
	diskRes, err := diskLab.Run(ctx, "table5")
	if err != nil {
		t.Fatal(err)
	}

	// Read path 2: the packed file from local disk.
	local, err := OpenPack(packPath)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	if local.Scale() != store.Scale() {
		t.Fatalf("pack scale %q, store scale %q", local.Scale(), store.Scale())
	}
	localRes, err := NewLab(WithScale(scale), WithSource(local)).Run(ctx, "table5")
	if err != nil {
		t.Fatal(err)
	}

	// Read path 3: the same file behind a plain static file server —
	// http.FileServer knows nothing about archives, it just answers
	// the pack reader's real Range requests.
	ts := httptest.NewServer(http.FileServer(http.Dir(filepath.Dir(packPath))))
	defer ts.Close()
	remote, err := OpenPackURL(ctx, ts.URL+"/joint.pack")
	if err != nil {
		t.Fatal(err)
	}
	remoteRes, err := NewLab(WithScale(scale), WithSource(remote)).Run(ctx, "table5")
	if err != nil {
		t.Fatal(err)
	}

	if got := engine.RunCount(); got != runsBefore {
		t.Fatalf("engine invoked %d times on the read paths", got-runsBefore)
	}
	if diskRes.Render() != localRes.Render() {
		t.Fatalf("packed (local) output differs:\n--- from disk ---\n%s\n--- from pack ---\n%s",
			diskRes.Render(), localRes.Render())
	}
	if diskRes.Render() != remoteRes.Render() {
		t.Fatalf("packed (HTTP Range) output differs:\n--- from disk ---\n%s\n--- over HTTP ---\n%s",
			diskRes.Render(), remoteRes.Render())
	}
}
