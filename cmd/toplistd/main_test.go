package main

import (
	"context"
	"testing"
	"time"

	"repro/internal/listserv"
	"repro/internal/toplist"
)

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-scale", "bogus"}, nil); err == nil {
		t.Fatal("bogus scale should fail")
	}
	if err := run([]string{"-addr", "256.0.0.1:http:nope"}, nil); err == nil {
		t.Fatal("bad address should fail")
	}
	if err := run([]string{"-notaflag"}, nil); err == nil {
		t.Fatal("unknown flag should fail")
	}
}

func TestLiveSinkStreamsAndPublishes(t *testing.T) {
	arch := toplist.NewArchive(0, 3)
	arch.Expect("alexa")
	gk := listserv.NewGatekeeper(arch, -1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	sink := newLiveSink(ctx, gk, time.Millisecond)
	defer sink.stop()
	for d := toplist.Day(0); d <= 3; d++ {
		if err := sink.Put("alexa", d, toplist.New([]string{"a.com"})); err != nil {
			t.Fatal(err)
		}
		// The snapshot is stored but not yet visible to readers.
		if got := gk.LastVisible(); got >= d {
			t.Fatalf("day %v visible before EndDay (LastVisible=%v)", d, got)
		}
		if err := sink.EndDay(d); err != nil {
			t.Fatal(err)
		}
		if got := gk.LastVisible(); got != d {
			t.Fatalf("LastVisible = %v after EndDay(%v)", got, d)
		}
	}
	if !arch.Complete() {
		t.Fatal("streamed archive incomplete")
	}
}

func TestLiveSinkStopsOnCancel(t *testing.T) {
	arch := toplist.NewArchive(0, 1000)
	gk := listserv.NewGatekeeper(arch, -1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sink := newLiveSink(ctx, gk, time.Hour)
	defer sink.stop()
	done := make(chan error, 1)
	go func() { done <- sink.EndDay(0) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("EndDay on cancelled context should error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("EndDay ignored cancellation")
	}
}
