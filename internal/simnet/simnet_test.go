package simnet

import (
	"testing"
	"testing/quick"
)

func TestPrefixContains(t *testing.T) {
	p := Prefix{Addr: 0x0A000000, Bits: 8} // 10.0.0.0/8
	if !p.Contains(0x0A123456) {
		t.Fatal("10.18.52.86 should match 10/8")
	}
	if p.Contains(0x0B000000) {
		t.Fatal("11.0.0.0 should not match 10/8")
	}
	all := Prefix{Addr: 0, Bits: 0}
	if !all.Contains(0xFFFFFFFF) {
		t.Fatal("default route matches everything")
	}
}

func TestPrefixString(t *testing.T) {
	p := Prefix{Addr: 0x01020304, Bits: 24}
	if p.String() != "1.2.3.4/24" {
		t.Fatalf("got %s", p.String())
	}
}

func TestRouteTableLPM(t *testing.T) {
	rt := NewRouteTable()
	rt.Insert(Prefix{Addr: 0x0A000000, Bits: 8}, 100)
	rt.Insert(Prefix{Addr: 0x0A010000, Bits: 16}, 200)
	rt.Insert(Prefix{Addr: 0x0A010200, Bits: 24}, 300)

	for _, tc := range []struct {
		ip   uint32
		want uint32
	}{
		{0x0AFF0001, 100}, // only /8 matches
		{0x0A01FF01, 200}, // /16 beats /8
		{0x0A010205, 300}, // /24 beats /16
	} {
		got, ok := rt.Lookup(tc.ip)
		if !ok || got != tc.want {
			t.Fatalf("Lookup(%08x) = %d,%v want %d", tc.ip, got, ok, tc.want)
		}
	}
	if _, ok := rt.Lookup(0x0B000000); ok {
		t.Fatal("unannounced space should not match")
	}
	if rt.Len() != 3 {
		t.Fatalf("len %d", rt.Len())
	}
}

func TestRouteTableOverwrite(t *testing.T) {
	rt := NewRouteTable()
	p := Prefix{Addr: 0x01000000, Bits: 16}
	rt.Insert(p, 1)
	rt.Insert(p, 2)
	if rt.Len() != 1 {
		t.Fatalf("len %d", rt.Len())
	}
	if asn, _ := rt.Lookup(0x01000001); asn != 2 {
		t.Fatalf("asn %d", asn)
	}
}

func TestRouteTableDefaultRoute(t *testing.T) {
	rt := NewRouteTable()
	rt.Insert(Prefix{Addr: 0, Bits: 0}, 42)
	if asn, ok := rt.Lookup(0xDEADBEEF); !ok || asn != 42 {
		t.Fatal("default route")
	}
}

func TestRouteTableHostRoute(t *testing.T) {
	rt := NewRouteTable()
	rt.Insert(Prefix{Addr: 0x01020304, Bits: 32}, 7)
	if asn, ok := rt.Lookup(0x01020304); !ok || asn != 7 {
		t.Fatal("host route exact match")
	}
	if _, ok := rt.Lookup(0x01020305); ok {
		t.Fatal("host route must not match neighbours")
	}
}

func TestRegistryRouting(t *testing.T) {
	reg := NewASRegistry(50)
	rt := NewRouteTableFromRegistry(reg)
	if rt.Len() == 0 {
		t.Fatal("no prefixes announced")
	}
	// Every announced prefix's network address must map back to its AS.
	for _, as := range reg.All() {
		for _, p := range as.Prefixes {
			got, ok := rt.Lookup(p.Addr | 1)
			if !ok {
				t.Fatalf("no route for %v", p)
			}
			// A more-specific prefix of another AS could shadow, but our
			// carving is disjoint per AS except the intra-AS /16 inside
			// the /10 — both belong to the same AS.
			if got != as.Number {
				t.Fatalf("prefix %v routed to %d, want %d", p, got, as.Number)
			}
		}
	}
}

func TestRegistryLookupHelpers(t *testing.T) {
	reg := NewASRegistry(5)
	if reg.ByNumber(26496) == nil || reg.ByNumber(26496).Name != "GoDaddy" {
		t.Fatal("GoDaddy missing")
	}
	if reg.ByNumber(424242) != nil {
		t.Fatal("unknown AS should be nil")
	}
	if got := reg.Label(15169); got != "Google (15169)" {
		t.Fatalf("label %q", got)
	}
	if got := reg.Label(424242); got != "AS424242" {
		t.Fatalf("unknown label %q", got)
	}
	if len(reg.ByRole(RoleMassHosting)) == 0 || len(reg.ByRole(RoleCDN)) == 0 {
		t.Fatal("roles missing")
	}
	nums := reg.SortedNumbers()
	for i := 1; i < len(nums); i++ {
		if nums[i-1] >= nums[i] {
			t.Fatal("numbers not sorted")
		}
	}
}

func TestLPMMatchesLinearScanProperty(t *testing.T) {
	reg := NewASRegistry(100)
	rt := NewRouteTableFromRegistry(reg)
	linear := func(ip uint32) (uint32, bool) {
		bestBits := -1
		var bestASN uint32
		for _, as := range reg.All() {
			for _, p := range as.Prefixes {
				if p.Contains(ip) && p.Bits > bestBits {
					bestBits = p.Bits
					bestASN = as.Number
				}
			}
		}
		return bestASN, bestBits >= 0
	}
	f := func(ip uint32) bool {
		gotASN, gotOK := rt.Lookup(ip)
		wantASN, wantOK := linear(ip)
		if gotOK != wantOK {
			return false
		}
		return !gotOK || gotASN == wantASN
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCDNDetect(t *testing.T) {
	r := NewCDNRegistry()
	for _, tc := range []struct {
		cname string
		want  string
	}{
		{"example-com.edgekey.net", "Akamai"},
		{"foo.edgesuite.net.", "Akamai"}, // alias + trailing dot
		{"ghs.googlehosted.com", "Google"},
		{"d111.cloudfront.net", "Amazon"},
		{"shop.example.map.fastly.net", "Fastly"},
		{"lb.wordpress.com", "WordPress"},
		{"whatever.example.org", ""},
	} {
		id := r.Detect(tc.cname)
		if got := r.Name(id); got != tc.want {
			t.Fatalf("Detect(%q) = %q, want %q", tc.cname, got, tc.want)
		}
	}
}

func TestCDNRegistryLookups(t *testing.T) {
	r := NewCDNRegistry()
	if r.ByID(0) != nil {
		t.Fatal("ID 0 is no-CDN")
	}
	if len(r.All()) < 10 {
		t.Fatal("registry too small")
	}
	target := r.CNAMETarget("example.com", 1)
	if target != "example-com.edgekey.net" {
		t.Fatalf("target %q", target)
	}
	if r.Detect(target) != 1 {
		t.Fatal("round trip detect")
	}
	if r.CNAMETarget("x.com", 0) != "" {
		t.Fatal("no-CDN target should be empty")
	}
}

func TestCDNRoundTripProperty(t *testing.T) {
	r := NewCDNRegistry()
	f := func(seed uint8) bool {
		ids := r.All()
		c := ids[int(seed)%len(ids)]
		return r.Detect(r.CNAMETarget("some.domain.com", c.ID)) == c.ID
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStaticZoneAndRCode(t *testing.T) {
	z := NewStaticZone()
	z.Add("Exists.COM", Response{RCode: RCodeNoError, A: 1, TTL: 300})
	if got := z.Lookup("exists.com"); got.RCode != RCodeNoError || got.A != 1 {
		t.Fatalf("lookup %+v", got)
	}
	if got := z.Lookup("missing.com"); got.RCode != RCodeNXDomain {
		t.Fatal("default should be NXDOMAIN")
	}
	if RCodeNoError.String() != "NOERROR" || RCodeNXDomain.String() != "NXDOMAIN" ||
		RCodeServFail.String() != "SERVFAIL" {
		t.Fatal("rcode strings")
	}
}

func TestCachingResolverTTL(t *testing.T) {
	z := NewStaticZone()
	z.Add("a.com", Response{RCode: RCodeNoError, A: 1, TTL: 100})
	r := NewCachingResolver(z)

	for i := 0; i < 5; i++ {
		r.Query("a.com")
	}
	if r.UpstreamQueries["a.com"] != 1 {
		t.Fatalf("upstream %d, want 1 (cache hit)", r.UpstreamQueries["a.com"])
	}
	if r.ClientQueries["a.com"] != 5 {
		t.Fatalf("client %d", r.ClientQueries["a.com"])
	}
	r.Advance(101)
	r.Query("a.com")
	if r.UpstreamQueries["a.com"] != 2 {
		t.Fatalf("upstream after expiry %d, want 2", r.UpstreamQueries["a.com"])
	}
}

func TestCachingResolverNegativeCache(t *testing.T) {
	z := NewStaticZone()
	r := NewCachingResolver(z)
	r.Query("gone.com")
	r.Query("gone.com")
	if r.UpstreamQueries["gone.com"] != 1 {
		t.Fatal("negative answers should be cached")
	}
	r.Advance(61)
	r.Query("gone.com")
	if r.UpstreamQueries["gone.com"] != 2 {
		t.Fatal("negative cache should expire after 60s")
	}
}

func TestCachingResolverTTLBiasShape(t *testing.T) {
	// The §7.2 TTL experiment: upstream volume scales inversely with
	// TTL under steady client load.
	z := NewStaticZone()
	z.Add("short.com", Response{RCode: RCodeNoError, A: 1, TTL: 60})
	z.Add("long.com", Response{RCode: RCodeNoError, A: 2, TTL: 3600})
	r := NewCachingResolver(z)
	for s := 0; s < 3600*4; s += 30 {
		r.Query("short.com")
		r.Query("long.com")
		r.Advance(30)
	}
	short := r.UpstreamQueries["short.com"]
	long := r.UpstreamQueries["long.com"]
	if short <= long*10 {
		t.Fatalf("short-TTL upstream %d should far exceed long-TTL %d", short, long)
	}
	if r.ClientQueries["short.com"] != r.ClientQueries["long.com"] {
		t.Fatal("client volumes should match")
	}
}

func TestProbeResultHSTS(t *testing.T) {
	if (ProbeResult{TLS: true, HSTSMaxAge: 0}).HSTSEnabled() {
		t.Fatal("max-age 0 is not HSTS-enabled")
	}
	if !(ProbeResult{TLS: true, HSTSMaxAge: 31536000}).HSTSEnabled() {
		t.Fatal("valid HSTS")
	}
	if (ProbeResult{TLS: false, HSTSMaxAge: 100}).HSTSEnabled() {
		t.Fatal("HSTS requires TLS")
	}
}

func BenchmarkRouteLookup(b *testing.B) {
	reg := NewASRegistry(2000)
	rt := NewRouteTableFromRegistry(reg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Lookup(uint32(i) * 2654435761)
	}
}

func BenchmarkCDNDetect(b *testing.B) {
	r := NewCDNRegistry()
	for i := 0; i < b.N; i++ {
		r.Detect("assets.shop.example.map.fastly.net")
	}
}
