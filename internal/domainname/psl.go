package domainname

import "strings"

// The embedded miniature Public Suffix List. It follows the PSL
// algorithm: the longest matching rule wins, "*" matches exactly one
// label, and "!" exception rules override wildcard rules. The set below
// covers the ICANN suffixes that dominate real top lists plus a sample of
// private-section suffixes (blogspot, github.io, …) so PSL-aware grouping
// is exercised the way the paper uses it.
var pslRules = []string{
	// Generic TLDs.
	"com", "net", "org", "info", "biz", "edu", "gov", "mil", "int",
	"io", "co", "me", "tv", "cc", "xyz", "online", "site", "top",
	"club", "shop", "app", "dev", "cloud", "blog", "space", "store",
	// Country-code TLDs (flat).
	"de", "fr", "nl", "it", "es", "pl", "ru", "ch", "at", "be", "se",
	"no", "fi", "dk", "cz", "eu", "us", "ca", "cn", "in", "ir", "gr",
	"ro", "hu", "pt", "sk", "tw", "vn", "id", "th", "my", "sg", "hk",
	"kr", "ua", "by", "kz", "ar", "cl", "pe",
	// Multi-label public suffixes.
	"co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk", "uk",
	"com.au", "net.au", "org.au", "edu.au", "au",
	"co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp", "jp",
	"com.br", "net.br", "org.br", "gov.br", "br",
	"com.mx", "org.mx", "mx",
	"co.in", "net.in", "org.in",
	"co.nz", "net.nz", "org.nz", "nz",
	"co.za", "org.za", "za",
	"com.tr", "org.tr", "tr",
	"com.cn", "net.cn", "org.cn",
	"co.kr", "or.kr",
	"com.tw", "org.tw",
	"com.hk", "org.hk",
	"com.sg", "org.sg",
	"com.ar", "com.pe", "com.cl",
	// Wildcard rule with exceptions (the PSL's classic .ck case).
	"*.ck", "!www.ck",
	// Private-section suffixes: user-content platforms whose
	// subdomains belong to distinct owners.
	"blogspot.com", "blogspot.de", "blogspot.co.uk", "blogspot.com.br",
	"blogspot.fr", "blogspot.in", "blogspot.mx", "blogspot.jp",
	"github.io", "gitlab.io", "herokuapp.com", "appspot.com",
	"cloudfront.net", "s3.amazonaws.com", "fastly.net",
	"azurewebsites.net", "netlify.app", "web.app", "firebaseapp.com",
	"wordpress.com", "weebly.com", "wixsite.com",
}

var (
	pslExact    map[string]bool
	pslWildcard map[string]bool // parent of "*." rules
	pslExcept   map[string]bool // names from "!" rules
)

func init() {
	pslExact = make(map[string]bool, len(pslRules))
	pslWildcard = make(map[string]bool)
	pslExcept = make(map[string]bool)
	for _, r := range pslRules {
		switch {
		case strings.HasPrefix(r, "*."):
			pslWildcard[r[2:]] = true
		case strings.HasPrefix(r, "!"):
			pslExcept[r[1:]] = true
		default:
			pslExact[r] = true
		}
	}
}

// publicSuffixLabels returns how many trailing labels of labels form the
// public suffix under the embedded PSL. Per the PSL algorithm, a name
// with no matching rule has a one-label public suffix (its TLD).
func publicSuffixLabels(labels []string) int {
	best := 1
	for i := 0; i < len(labels); i++ {
		candidate := strings.Join(labels[i:], ".")
		n := len(labels) - i
		if pslExcept[candidate] {
			// An exception rule makes the matched name registrable: its
			// public suffix is one label shorter.
			return n - 1
		}
		if pslExact[candidate] && n > best {
			best = n
		}
		if i > 0 {
			parent := strings.Join(labels[i:], ".")
			if pslWildcard[parent] && n+1 > best && i >= 1 {
				// "*.parent" matched by labels[i-1:].
				best = n + 1
			}
		}
	}
	if best > len(labels) {
		best = len(labels)
	}
	return best
}

// IsPublicSuffix reports whether the whole of s is a public suffix.
func IsPublicSuffix(s string) bool {
	n, err := Parse(s)
	if err != nil {
		return false
	}
	return n.Base == ""
}

// PublicSuffixRuleCount reports the number of embedded PSL rules; used in
// documentation/diagnostic output.
func PublicSuffixRuleCount() int { return len(pslRules) }
