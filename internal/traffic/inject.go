package traffic

// Injection is externally generated DNS activity for one name on one
// day: how many distinct clients queried it and the total query count.
// The §7 experiments inject RIPE-Atlas-probe traffic this way.
type Injection struct {
	Clients float64
	Queries float64
}

// Injector accumulates injected DNS activity per (name, day). The zero
// value is not usable; use NewInjector.
type Injector struct {
	byDay map[int]map[string]Injection
}

// NewInjector returns an empty injector.
func NewInjector() *Injector {
	return &Injector{byDay: make(map[int]map[string]Injection)}
}

// Add accumulates clients/queries for name on day.
func (in *Injector) Add(name string, day int, clients, queries float64) {
	m := in.byDay[day]
	if m == nil {
		m = make(map[string]Injection)
		in.byDay[day] = m
	}
	cur := m[name]
	cur.Clients += clients
	cur.Queries += queries
	m[name] = cur
}

// For returns the injections for day (nil when none). The returned map
// is the internal one; callers must not modify it.
func (in *Injector) For(day int) map[string]Injection {
	return in.byDay[day]
}

// Clear removes all injections (between experiment runs).
func (in *Injector) Clear() {
	in.byDay = make(map[int]map[string]Injection)
}
