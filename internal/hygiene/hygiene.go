// Package hygiene implements the paper's §9.1 recommendations as a
// composable list-cleaning pipeline.
//
// The paper documents why raw top lists are hazardous study inputs:
// Umbrella carries 2.3% of names under non-existent TLDs (§5.1), has
// an 11.5% NXDOMAIN share (§8.1), and lists subdomains 33 levels deep;
// all lists churn daily. Each Filter removes one hazard class, a
// Pipeline composes them with per-filter accounting, and
// StabilityImpact quantifies how much cleaning plus presence
// requirements reduce day-to-day churn — the empirical backing for the
// paper's "consider stability" recommendation.
package hygiene

import (
	"fmt"
	"strings"

	"repro/internal/domainname"
	"repro/internal/simnet"
	"repro/internal/toplist"
)

// Filter decides whether a listed name is kept. Filters must be
// stateless with respect to list order.
type Filter interface {
	// Name identifies the filter in reports.
	Name() string
	// Keep reports whether the name survives the filter.
	Keep(name string) bool
}

// filterFunc adapts a function to Filter.
type filterFunc struct {
	name string
	keep func(string) bool
}

func (f filterFunc) Name() string          { return f.name }
func (f filterFunc) Keep(name string) bool { return f.keep(name) }

// NewFilter wraps keep as a named Filter.
func NewFilter(name string, keep func(string) bool) Filter {
	return filterFunc{name: name, keep: keep}
}

// ValidTLD drops names whose top-level domain is not in the delegated
// TLD registry — the §5.1 invalid-TLD hazard (instagram, localdomain,
// cpe, ...).
func ValidTLD() Filter {
	return NewFilter("valid-tld", func(name string) bool {
		n, err := domainname.Parse(name)
		return err == nil && n.ValidTLD
	})
}

// MaxDepth drops names nested deeper than maxDepth subdomain levels
// (the paper observes levels up to 33 in Umbrella; web studies rarely
// want anything beyond 1–2).
func MaxDepth(maxDepth int) Filter {
	return NewFilter(fmt.Sprintf("max-depth-%d", maxDepth), func(name string) bool {
		n, err := domainname.Parse(name)
		return err == nil && n.Depth <= maxDepth
	})
}

// WellFormed drops syntactically broken names (empty labels, illegal
// characters, overlong labels) that a measurement pipeline could not
// query anyway.
func WellFormed() Filter {
	return NewFilter("well-formed", func(name string) bool {
		_, err := domainname.Parse(name)
		return err == nil
	})
}

// Resolvable drops names that return NXDOMAIN from the given zone —
// the §8.1 "a top list should only provide existing domains" check.
// SERVFAIL names are kept: they exist but are temporarily broken.
func Resolvable(zone simnet.Zone) Filter {
	return NewFilter("resolvable", func(name string) bool {
		return zone.Lookup(name).RCode != simnet.RCodeNXDomain
	})
}

// NoLocalhost drops loopback/localdomain style junk occasionally seen
// in DNS-derived lists.
func NoLocalhost() Filter {
	return NewFilter("no-localhost", func(name string) bool {
		lower := strings.ToLower(name)
		return lower != "localhost" &&
			!strings.HasSuffix(lower, ".localhost") &&
			!strings.HasSuffix(lower, ".local") &&
			!strings.HasSuffix(lower, ".localdomain")
	})
}

// Drops records how many names one filter removed.
type Drops struct {
	Filter  string
	Dropped int
}

// Report accounts for a pipeline application.
type Report struct {
	Input  int
	Output int
	Drops  []Drops // in pipeline order
}

// DropShare is the fraction of input removed overall.
func (r Report) DropShare() float64 {
	if r.Input == 0 {
		return 0
	}
	return float64(r.Input-r.Output) / float64(r.Input)
}

// String renders the report in one line.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d -> %d (%.1f%% dropped)", r.Input, r.Output, 100*r.DropShare())
	for _, d := range r.Drops {
		fmt.Fprintf(&b, "; %s: -%d", d.Filter, d.Dropped)
	}
	return b.String()
}

// Pipeline applies filters in order. The zero value is a no-op
// pipeline.
type Pipeline struct {
	filters []Filter
}

// NewPipeline composes filters in application order.
func NewPipeline(filters ...Filter) *Pipeline {
	return &Pipeline{filters: append([]Filter(nil), filters...)}
}

// Recommended is the pipeline the paper's recommendations imply for a
// web-measurement use of a top list: well-formed names under valid
// TLDs, no local junk, resolvable in DNS.
func Recommended(zone simnet.Zone) *Pipeline {
	return NewPipeline(WellFormed(), ValidTLD(), NoLocalhost(), Resolvable(zone))
}

// Apply filters the list, preserving rank order of the survivors, and
// returns the cleaned list plus the per-filter accounting.
func (p *Pipeline) Apply(l *toplist.List) (*toplist.List, Report) {
	names := l.Names()
	rep := Report{Input: len(names)}
	for _, f := range p.filters {
		kept := names[:0]
		dropped := 0
		for _, n := range names {
			if f.Keep(n) {
				kept = append(kept, n)
			} else {
				dropped++
			}
		}
		names = kept
		rep.Drops = append(rep.Drops, Drops{Filter: f.Name(), Dropped: dropped})
	}
	rep.Output = len(names)
	return toplist.New(names), rep
}

// ApplyTop filters the list and cuts the result to size — the "clean
// then take top N" usage that keeps study sets comparable across days.
func (p *Pipeline) ApplyTop(l *toplist.List, size int) (*toplist.List, Report) {
	cleaned, rep := p.Apply(l)
	return cleaned.Top(size), rep
}
