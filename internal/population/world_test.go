package population

import (
	"math"
	"testing"

	"repro/internal/domainname"
	"repro/internal/simnet"
)

func buildTest(t *testing.T) *World {
	t.Helper()
	w, err := Build(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildValidates(t *testing.T) {
	bad := TestConfig()
	bad.Days = 2
	if _, err := Build(bad); err == nil {
		t.Fatal("short horizon should fail validation")
	}
	bad = TestConfig()
	bad.CategoryMix[CatWeb] += 0.5
	if _, err := Build(bad); err == nil {
		t.Fatal("unnormalised mix should fail")
	}
	bad = TestConfig()
	bad.ZipfExponent = 0
	if _, err := Build(bad); err == nil {
		t.Fatal("zero exponent should fail")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Domains {
		if a.Domains[i].Name != b.Domains[i].Name ||
			a.Domains[i].DNSPop != b.Domains[i].DNSPop ||
			a.Domains[i].Flags != b.Domains[i].Flags {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestBuildSeedSensitive(t *testing.T) {
	cfg := TestConfig()
	a, _ := Build(cfg)
	cfg.Seed = 999
	b, _ := Build(cfg)
	diff := 0
	n := a.Len()
	if b.Len() < n {
		n = b.Len()
	}
	for i := 0; i < n; i++ {
		if a.Domains[i].Name != b.Domains[i].Name {
			diff++
		}
	}
	if diff < n/2 {
		t.Fatalf("different seeds produced %d/%d differing names", diff, n)
	}
}

func TestWorldComposition(t *testing.T) {
	w := buildTest(t)
	cfg := w.Cfg
	wantBases := cfg.Sites + cfg.BirthsPerDay*(cfg.Days-1)
	// Platform sizing truncation keeps this within a small margin.
	if got := w.BaseCount(); got < wantBases-20 || got > wantBases+20 {
		t.Fatalf("base count %d, want ≈%d", got, wantBases)
	}
	if w.Len() <= w.BaseCount() {
		t.Fatal("no subdomains generated")
	}
	// Names are unique.
	seen := make(map[string]struct{}, w.Len())
	for i := range w.Domains {
		name := w.Domains[i].Name
		if _, dup := seen[name]; dup {
			t.Fatalf("duplicate name %q", name)
		}
		seen[name] = struct{}{}
	}
}

func TestAllNamesParse(t *testing.T) {
	w := buildTest(t)
	for i := range w.Domains {
		if _, err := domainname.Parse(w.Domains[i].Name); err != nil {
			t.Fatalf("unparseable generated name: %v", err)
		}
	}
}

func TestCategoryInvariants(t *testing.T) {
	w := buildTest(t)
	var junk, ghost, tracker int
	maxDepth := 0
	for i := range w.Domains {
		d := &w.Domains[i]
		switch d.Category {
		case CatJunk:
			junk++
			if d.ValidTLD {
				t.Fatalf("junk name %q has a valid TLD", d.Name)
			}
			if d.Flags != 0 {
				t.Fatalf("junk name %q has capability flags", d.Name)
			}
		case CatGhost:
			ghost++
			if d.Exists(3) {
				t.Fatal("ghost domains must never resolve")
			}
		case CatTracker:
			tracker++
		}
		if int(d.Depth) > maxDepth {
			maxDepth = int(d.Depth)
		}
	}
	if junk == 0 || ghost == 0 || tracker == 0 {
		t.Fatalf("missing categories: junk=%d ghost=%d tracker=%d", junk, ghost, tracker)
	}
	if maxDepth < 20 {
		t.Fatalf("max depth %d; expected an extreme OID chain (paper: 33)", maxDepth)
	}
}

func TestBirthAndDeath(t *testing.T) {
	w := buildTest(t)
	births, deaths := 0, 0
	for _, bid := range w.BaseIDs() {
		d := &w.Domains[bid]
		if d.BirthDay > 0 {
			births++
			if d.Born(int(d.BirthDay) - 1) {
				t.Fatal("Born before BirthDay")
			}
			if !d.Born(int(d.BirthDay)) {
				t.Fatal("not Born on BirthDay")
			}
		}
		if d.DeathDay >= 0 {
			deaths++
			if d.Exists(int(d.DeathDay)) {
				t.Fatal("Exists on DeathDay")
			}
			if !d.Exists(int(d.DeathDay) - 1) {
				t.Fatal("should exist just before death")
			}
		}
	}
	cfg := w.Cfg
	if births != cfg.BirthsPerDay*(cfg.Days-1) {
		t.Fatalf("births %d", births)
	}
	if deaths == 0 {
		t.Fatal("no deaths")
	}
}

func TestTrendingNewborns(t *testing.T) {
	w := buildTest(t)
	trending := 0
	for _, bid := range w.BaseIDs() {
		d := &w.Domains[bid]
		if d.TrendBoost > 0 {
			trending++
			if d.BirthDay == 0 {
				t.Fatal("day-0 site has a trend boost")
			}
			if d.TrendTau <= 0 {
				t.Fatal("trend boost without decay constant")
			}
		}
	}
	if trending == 0 {
		t.Fatal("no trending newborns")
	}
}

func TestAdoptionBias(t *testing.T) {
	// The central Table 5 mechanism: adoption must fall with
	// popularity quantile.
	w := buildTest(t)
	bids := w.BaseIDs()
	// Order base domains by latent popularity.
	head, tail := 0.0, 0.0
	headN, tailN := 0, 0
	var headIPv6, tailIPv6, headTLS, tailTLS float64
	_ = head
	_ = tail
	// Head = top 1%, tail = bottom 50%.
	ordered := make([]uint32, len(bids))
	copy(ordered, bids)
	for i := 0; i < len(ordered); i++ {
		for j := i + 1; j < len(ordered); j++ {
			if w.Domains[ordered[j]].Latent > w.Domains[ordered[i]].Latent {
				ordered[i], ordered[j] = ordered[j], ordered[i]
			}
		}
		if i > len(bids)/100 {
			break // only need the head sorted; tail sampled below
		}
	}
	for i := 0; i <= len(bids)/100; i++ {
		d := &w.Domains[ordered[i]]
		headN++
		if d.Flags.Has(FlagIPv6) {
			headIPv6++
		}
		if d.Flags.Has(FlagTLS) {
			headTLS++
		}
	}
	for i := len(bids) / 2; i < len(bids); i++ {
		d := &w.Domains[bids[i]]
		if d.Category.NeverResolves() {
			continue
		}
		tailN++
		if d.Flags.Has(FlagIPv6) {
			tailIPv6++
		}
		if d.Flags.Has(FlagTLS) {
			tailTLS++
		}
	}
	if headN == 0 || tailN == 0 {
		t.Fatal("empty samples")
	}
	if headIPv6/float64(headN) <= tailIPv6/float64(tailN) {
		t.Fatalf("IPv6 adoption not popularity-biased: head %.3f tail %.3f",
			headIPv6/float64(headN), tailIPv6/float64(tailN))
	}
	if headTLS/float64(headN) <= tailTLS/float64(tailN) {
		t.Fatalf("TLS adoption not popularity-biased: head %.3f tail %.3f",
			headTLS/float64(headN), tailTLS/float64(tailN))
	}
}

func TestFlagImplications(t *testing.T) {
	w := buildTest(t)
	for i := range w.Domains {
		d := &w.Domains[i]
		if d.Flags.Has(FlagHSTS) && !d.Flags.Has(FlagTLS) {
			t.Fatalf("%q: HSTS without TLS", d.Name)
		}
		if d.Flags.Has(FlagHTTP2) && !d.Flags.Has(FlagTLS) {
			t.Fatalf("%q: HTTP2 without TLS", d.Name)
		}
		if d.CDN != 0 && !d.Flags.Has(FlagCNAME) {
			t.Fatalf("%q: CDN without CNAME", d.Name)
		}
	}
}

func TestInfrastructureConsistency(t *testing.T) {
	w := buildTest(t)
	for _, bid := range w.BaseIDs() {
		d := &w.Domains[bid]
		if d.Category.NeverResolves() {
			continue
		}
		if w.ASes.ByNumber(d.ASN) == nil {
			t.Fatalf("%q: unknown ASN %d", d.Name, d.ASN)
		}
		// The route table must map the address back to the AS.
		asn, ok := w.Routes.Lookup(d.IPv4)
		if !ok || asn != d.ASN {
			t.Fatalf("%q: IPv4 %08x routes to %d (ok=%v), want %d",
				d.Name, d.IPv4, asn, ok, d.ASN)
		}
		if d.CDN != 0 {
			cdn := w.CDNs.ByID(d.CDN)
			if cdn == nil {
				t.Fatalf("%q: unknown CDN %d", d.Name, d.CDN)
			}
			if d.ASN != cdn.ASN {
				t.Fatalf("%q: CDN %s but ASN %d", d.Name, cdn.Name, d.ASN)
			}
		}
		found := false
		for _, ttl := range []uint32{30, 60, 300, 900, 3600, 86400} {
			if d.TTL == ttl {
				found = true
			}
		}
		if !found {
			t.Fatalf("%q: unexpected TTL %d", d.Name, d.TTL)
		}
	}
}

func TestZoneSemantics(t *testing.T) {
	w := buildTest(t)
	zone := w.ZoneAt(3)
	if got := zone.Lookup("definitely-not-generated.example"); got.RCode != simnet.RCodeNXDomain {
		t.Fatal("unknown names must be NXDOMAIN")
	}
	var alive, dead, junk, cdnHosted *Domain
	for i := range w.Domains {
		d := &w.Domains[i]
		switch {
		case d.Category == CatJunk && junk == nil:
			junk = d
		case d.DeathDay == 1 && dead == nil:
			dead = d
		case d.Exists(3) && d.CDN != 0 && cdnHosted == nil:
			cdnHosted = d
		case d.Exists(3) && alive == nil:
			alive = d
		}
	}
	if alive == nil || junk == nil || cdnHosted == nil {
		t.Fatal("missing fixtures")
	}
	if got := zone.Lookup(junk.Name); got.RCode != simnet.RCodeNXDomain {
		t.Fatal("junk must be NXDOMAIN")
	}
	if dead != nil {
		if got := zone.Lookup(dead.Name); got.RCode != simnet.RCodeNXDomain {
			t.Fatal("dead domain must be NXDOMAIN after death")
		}
		if got := w.ZoneAt(0).Lookup(dead.Name); got.RCode != simnet.RCodeNoError {
			t.Fatal("dead domain must resolve before death")
		}
	}
	got := zone.Lookup(alive.Name)
	if got.RCode != simnet.RCodeNoError || got.A != alive.IPv4 {
		t.Fatalf("alive lookup %+v", got)
	}
	if got.AAAA != alive.Flags.Has(FlagIPv6) {
		t.Fatal("AAAA mismatch")
	}
	resp := zone.Lookup(cdnHosted.Name)
	if len(resp.Chain) == 0 {
		t.Fatal("CDN-hosted name should present a CNAME chain")
	}
	if w.CDNs.Detect(resp.Chain[len(resp.Chain)-1]) != cdnHosted.CDN {
		t.Fatalf("CNAME target %q does not identify CDN %d", resp.Chain[0], cdnHosted.CDN)
	}
}

func TestProberSemantics(t *testing.T) {
	w := buildTest(t)
	prober := w.ProberAt(3)
	var tlsD, junkD *Domain
	for i := range w.Domains {
		d := &w.Domains[i]
		if d.Exists(3) && d.Flags.Has(FlagHSTS) && tlsD == nil {
			tlsD = d
		}
		if d.Category == CatJunk && junkD == nil {
			junkD = d
		}
	}
	if tlsD == nil || junkD == nil {
		t.Fatal("missing fixtures")
	}
	res := prober.Probe(tlsD.Name)
	if !res.Reachable || !res.TLS || !res.HSTSEnabled() {
		t.Fatalf("probe %+v", res)
	}
	if prober.Probe(junkD.Name).Reachable {
		t.Fatal("junk is unreachable")
	}
	if prober.Probe("nope.invalid").Reachable {
		t.Fatal("unknown is unreachable")
	}
}

func TestComNetOrgPopulation(t *testing.T) {
	w := buildTest(t)
	pop := w.ComNetOrg(0)
	if len(pop) == 0 {
		t.Fatal("empty population")
	}
	for _, id := range pop {
		d := &w.Domains[id]
		switch tld(d.Name) {
		case "com", "net", "org":
		default:
			t.Fatalf("population contains %q", d.Name)
		}
		if labelCount(d.Name) != 2 {
			t.Fatalf("population contains non-registered name %q", d.Name)
		}
		if d.Category.NeverResolves() {
			t.Fatalf("population contains ghost/junk %q", d.Name)
		}
	}
	// Population grows with births.
	if len(w.ComNetOrg(w.Cfg.Days-1)) <= len(pop) {
		t.Fatal("population should grow over time")
	}
	// NXDOMAIN share of the population should be ~DeathFraction/2 at
	// the end of the horizon (deaths spread uniformly), well under 5%.
	endDay := w.Cfg.Days - 1
	end := w.ComNetOrg(endDay)
	dead := 0
	for _, id := range end {
		if !w.Domains[id].Exists(endDay) {
			dead++
		}
	}
	frac := float64(dead) / float64(len(end))
	if frac <= 0 || frac > 0.05 {
		t.Fatalf("population NXDOMAIN share %.4f out of expected band", frac)
	}
}

func TestWeekendFactorsByCategory(t *testing.T) {
	w := buildTest(t)
	sums := make(map[Category]float64)
	counts := make(map[Category]int)
	for _, bid := range w.BaseIDs() {
		d := &w.Domains[bid]
		sums[d.Category] += d.WeekendFactor
		counts[d.Category]++
	}
	leisure := sums[CatLeisure] / float64(counts[CatLeisure])
	work := sums[CatWork] / float64(counts[CatWork])
	if leisure < 1.3 {
		t.Fatalf("leisure weekend factor %.2f too low", leisure)
	}
	if work > 0.8 {
		t.Fatalf("work weekend factor %.2f too high", work)
	}
}

func TestUmbrellaStyleDepthMix(t *testing.T) {
	// The DNS axis must see substantial subdomain mass (Umbrella's
	// 28%-base structure in Table 2 depends on it).
	w := buildTest(t)
	var baseDNS, subDNS float64
	for i := range w.Domains {
		d := &w.Domains[i]
		if d.Depth == 0 {
			baseDNS += d.DNSPop
		} else {
			subDNS += d.DNSPop
		}
	}
	if subDNS <= 0 {
		t.Fatal("no DNS mass on subdomains")
	}
	ratio := subDNS / (baseDNS + subDNS)
	if ratio < 0.1 || ratio > 0.9 {
		t.Fatalf("subdomain DNS mass share %.3f outside sane band", ratio)
	}
}

func TestCurveEval(t *testing.T) {
	c := curve{{1e-4, 0.2}, {1e-2, 0.1}, {1, 0.01}}
	if got := c.eval(1e-5); got != 0.2 {
		t.Fatalf("clamp low %v", got)
	}
	if got := c.eval(2); got != 0.01 {
		t.Fatalf("clamp high %v", got)
	}
	if got := c.eval(1e-3); math.Abs(got-0.15) > 1e-12 {
		t.Fatalf("midpoint %v, want 0.15 (log-linear)", got)
	}
	var empty curve
	if empty.eval(0.5) != 0 {
		t.Fatal("empty curve")
	}
}

func TestCategoryStrings(t *testing.T) {
	for c := CatWeb; c < numCategories; c++ {
		if c.String() == "unknown" {
			t.Fatalf("category %d has no name", c)
		}
	}
	if Category(200).String() != "unknown" {
		t.Fatal("out-of-range category")
	}
}

func TestIDByName(t *testing.T) {
	w := buildTest(t)
	name := w.Domains[42].Name
	id, ok := w.IDByName(name)
	if !ok || id != 42 {
		t.Fatalf("IDByName(%q) = %d,%v", name, id, ok)
	}
	if _, ok := w.IDByName("missing.example"); ok {
		t.Fatal("missing name found")
	}
}

func BenchmarkBuildWorld(b *testing.B) {
	cfg := TestConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
