package measure

import "repro/internal/stats"

// Bootstrap-based significance, the distribution-free companion to
// the paper's percentage-and-σ rule in Classify. Given the *daily
// series* of a metric on a list and on the population, the bootstrap
// difference interval answers "is the gap larger than the sampling
// noise" without assuming normal daily readings — useful at small
// simulation scales where daily shares are lumpy.

// BootstrapResamples is the default resample count; enough for stable
// 95% percentile bounds on the short daily series the campaigns
// produce.
const BootstrapResamples = 600

// ClassifyBootstrap marks a list series against a base series: ▲/▼
// when the 95% bootstrap interval of the mean difference excludes
// zero (in the respective direction), ■ otherwise. Deterministic in
// seed.
func ClassifyBootstrap(listSeries, baseSeries []float64, seed uint64) Mark {
	if len(listSeries) == 0 || len(baseSeries) == 0 {
		return MarkSame
	}
	ci := stats.DifferenceCI(listSeries, baseSeries, stats.Mean, BootstrapResamples, 0.95, seed)
	switch {
	case ci.Lo > 0:
		return MarkUp
	case ci.Hi < 0:
		return MarkDown
	default:
		return MarkSame
	}
}

// VerdictsAgree reports whether the paper's rule and the bootstrap
// rule agree on a series pair. The paper's rule additionally demands
// practical magnitude (50% deviation), so a bootstrap ▲ with a paper
// ■ means "statistically real but small" — the caller decides whether
// that distinction matters.
func VerdictsAgree(listSeries, baseSeries []float64, seed uint64) (paper, bootstrap Mark, agree bool) {
	paper = Classify(stats.Mean(listSeries), stats.Mean(baseSeries), stats.Std(baseSeries))
	bootstrap = ClassifyBootstrap(listSeries, baseSeries, seed)
	return paper, bootstrap, paper == bootstrap
}
