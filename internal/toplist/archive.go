package toplist

import (
	"fmt"
	"sort"
)

// Snapshot is one provider's list on one day.
type Snapshot struct {
	Provider string
	Day      Day
	List     *List
}

// Archive holds daily snapshots for multiple providers over a contiguous
// day range — the analog of the paper's JOINT dataset.
type Archive struct {
	first, last Day
	byProvider  map[string][]*List // index: day - first
	providers   []string           // insertion order
}

// NewArchive creates an empty archive spanning days [first, last].
func NewArchive(first, last Day) *Archive {
	if last < first {
		panic("toplist: archive with last < first")
	}
	return &Archive{first: first, last: last, byProvider: make(map[string][]*List)}
}

// First returns the first day covered.
func (a *Archive) First() Day { return a.first }

// Last returns the last day covered.
func (a *Archive) Last() Day { return a.last }

// Days returns the number of days covered.
func (a *Archive) Days() int { return int(a.last-a.first) + 1 }

// Providers returns provider names in insertion order.
func (a *Archive) Providers() []string {
	return append([]string(nil), a.providers...)
}

// Put stores a snapshot. Days outside the archive range or nil lists are
// rejected.
func (a *Archive) Put(provider string, day Day, l *List) error {
	if day < a.first || day > a.last {
		return fmt.Errorf("toplist: day %v outside archive range [%v,%v]", day, a.first, a.last)
	}
	if l == nil {
		return fmt.Errorf("toplist: nil list")
	}
	lists, ok := a.byProvider[provider]
	if !ok {
		lists = make([]*List, a.Days())
		a.byProvider[provider] = lists
		a.providers = append(a.providers, provider)
	}
	lists[int(day-a.first)] = l
	return nil
}

// Get returns the snapshot for provider on day, or nil if absent.
func (a *Archive) Get(provider string, day Day) *List {
	lists, ok := a.byProvider[provider]
	if !ok || day < a.first || day > a.last {
		return nil
	}
	return lists[int(day-a.first)]
}

// Complete reports whether every provider has a list for every day.
func (a *Archive) Complete() bool {
	for _, lists := range a.byProvider {
		for _, l := range lists {
			if l == nil {
				return false
			}
		}
	}
	return len(a.byProvider) > 0
}

// EachDay calls fn for every day in range, in order.
func (a *Archive) EachDay(fn func(Day)) {
	for d := a.first; d <= a.last; d++ {
		fn(d)
	}
}

// SortedProviders returns provider names sorted alphabetically (stable
// presentation order for reports).
func (a *Archive) SortedProviders() []string {
	out := a.Providers()
	sort.Strings(out)
	return out
}
