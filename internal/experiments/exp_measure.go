package experiments

import (
	"fmt"

	"repro/internal/measure"
	"repro/internal/stats"
	"repro/internal/toplist"
)

func init() {
	register("table5", "Measurement characteristics across lists and population (Table 5)", runTable5)
	register("fig6a", "NXDOMAIN share over time (Fig. 6a)", func(e *Env) (*Result, error) {
		return runDNSSeries(e, "fig6a",
			"Fig. 6a: Umbrella 11.5%, Majestic 2.7%, population 0.8%, Alexa 0.13%",
			func(m measure.Metrics) float64 { return m.NXDOMAIN })
	})
	register("fig6b", "IPv6 adoption over time (Fig. 6b)", func(e *Env) (*Result, error) {
		return runDNSSeries(e, "fig6b",
			"Fig. 6b: top lists 11-15% vs population 4.1%",
			func(m measure.Metrics) float64 { return m.IPv6 })
	})
	register("fig6c", "CAA adoption over time (Fig. 6c)", func(e *Env) (*Result, error) {
		return runDNSSeries(e, "fig6c",
			"Fig. 6c: top lists 1-2% vs population 0.1%; heads up to 28%",
			func(m measure.Metrics) float64 { return m.CAA })
	})
	register("fig7a", "CDN ratio by list and weekday (Fig. 7a)", runFig7a)
	register("fig7b", "Top-5 CDN share: head vs full vs population (Fig. 7b)", runFig7b)
	register("fig7c", "Top-5 CDN share by weekday (Fig. 7c)", runFig7c)
	register("fig7d", "Top-5 AS share: head vs full vs population (Fig. 7d)", runFig7d)
	register("fig8", "HTTP/2 adoption over time (Fig. 8)", runFig8)
}

// measureList measures the provider's list (optionally the head subset)
// on day.
func measureList(e *Env, provider string, day int, head bool) (measure.Metrics, error) {
	st, err := e.Study()
	if err != nil {
		return measure.Metrics{}, err
	}
	return st.Campaign.Measure(st.ListNames(provider, day, head), day), nil
}

func runTable5(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	// Sample several post-change days for means and σ, like the paper's
	// April/May 2018 measurement window.
	var days []int
	for d := st.Days() - 10; d < st.Days(); d += 2 {
		if d > 0 {
			days = append(days, d)
		}
	}
	type cell struct{ mean, std float64 }
	type column struct {
		name string
		head bool
		m    map[string][]float64
	}
	metricNames := []string{"NXDOMAIN", "IPv6-enabled", "CAA-enabled", "CNAMEs",
		"CDNs (via CNAME)", "Unique AS IPv4", "Unique AS IPv6", "Top 5 AS share",
		"TLS-capable", "HSTS-enabled (of TLS)", "HTTP2"}
	extract := func(m measure.Metrics) []float64 {
		return []float64{m.NXDOMAIN, m.IPv6, m.CAA, m.CNAME, m.CDN,
			float64(m.UniqueAS4), float64(m.UniqueAS6), m.Top5ASShare,
			m.TLS, m.HSTSofTLS, m.HTTP2}
	}
	var cols []*column
	for _, head := range []bool{true, false} {
		for _, p := range st.Providers() {
			label := p + " full"
			if head {
				label = fmt.Sprintf("%s head(%d)", p, st.Scale.HeadSize)
			}
			c := &column{name: label, head: head, m: map[string][]float64{}}
			for _, day := range days {
				met, err := measureList(e, p, day, head)
				if err != nil {
					return nil, err
				}
				for i, v := range extract(met) {
					c.m[metricNames[i]] = append(c.m[metricNames[i]], v)
				}
			}
			cols = append(cols, c)
		}
	}
	// Population column (measured once; it changes slowly).
	popDay := days[len(days)-1]
	popM := st.Campaign.Measure(st.PopulationNames(popDay), popDay)
	popVals := extract(popM)

	res := &Result{
		Paper: "Table 5: top lists significantly exceed the population on every adoption metric (heads by up to 2 orders of magnitude); NXDOMAIN Umbrella 11.5% ≫ Majestic 2.7% > population 0.8% > Alexa 0.13%; Umbrella lowest TLS among lists",
	}
	res.Header = []string{"metric"}
	for _, c := range cols {
		res.Header = append(res.Header, c.name)
	}
	res.Header = append(res.Header, "com/net/org")

	isCount := map[string]bool{"Unique AS IPv4": true, "Unique AS IPv6": true}
	for mi, name := range metricNames {
		row := []string{name}
		for ci, c := range cols {
			mean, std := stats.MeanStd(c.m[name])
			// Significance marking: heads against their full list,
			// fulls against the population (paper footnote 6).
			var base float64
			if c.head {
				fullCol := cols[ci+3]
				base = stats.Mean(fullCol.m[name])
			} else {
				base = popVals[mi]
			}
			markStr := ""
			if !isCount[name] {
				markStr = string(measure.Classify(mean, base, std)) + " "
			}
			row = append(row, markStr+meanStdCell(mean, std, !isCount[name]))
		}
		if isCount[name] {
			row = append(row, f1(popVals[mi]))
		} else {
			row = append(row, pct(popVals[mi]))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"measured on days %v; population sample %d domains", days, popM.N))
	return res, nil
}

// runDNSSeries renders a weekly-sampled share series for the full lists
// plus the population.
func runDNSSeries(e *Env, id, paper string, get func(measure.Metrics) float64) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Paper:  paper,
		Header: []string{"day", "alexa 1M", "umbrella 1M", "majestic 1M", "com/net/org"},
	}
	for day := 0; day < st.Days(); day += 7 {
		row := []string{toplist.Day(day).String()}
		for _, p := range st.Providers() {
			m, err := measureList(e, p, day, false)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(get(m)))
		}
		pm := st.Campaign.Measure(st.PopulationNames(day), day)
		row = append(row, pct(get(pm)))
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// weekdayWindow returns 14 consecutive post-change days, for per-weekday
// grouping.
func weekdayWindow(st interface{ Days() int }) (from, to int) {
	to = st.Days() - 1
	from = to - 14
	if from < 0 {
		from = 0
	}
	return
}

func runFig7a(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	from, to := weekdayWindow(st)
	res := &Result{
		Paper:  "Fig. 7a: CDN detection ratio differs by list (head ~26-36%, full 2.6-10%) with minor weekday effects",
		Header: []string{"weekday", "alexa head", "alexa full", "umbrella head", "umbrella full", "majestic head", "majestic full"},
	}
	type acc struct {
		sum float64
		n   int
	}
	table := map[string]map[int]*acc{} // provider+head -> weekday -> acc
	key := func(p string, head bool) string {
		if head {
			return p + "+h"
		}
		return p
	}
	for day := from; day < to; day++ {
		wd := int(toplist.Day(day).Weekday())
		for _, p := range st.Providers() {
			for _, head := range []bool{true, false} {
				m, err := measureList(e, p, day, head)
				if err != nil {
					return nil, err
				}
				k := key(p, head)
				if table[k] == nil {
					table[k] = map[int]*acc{}
				}
				if table[k][wd] == nil {
					table[k][wd] = &acc{}
				}
				table[k][wd].sum += m.CDN
				table[k][wd].n++
			}
		}
	}
	weekdays := []string{"Sunday", "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday"}
	for wd := 0; wd < 7; wd++ {
		row := []string{weekdays[wd]}
		for _, p := range st.Providers() {
			for _, head := range []bool{true, false} {
				a := table[key(p, head)][wd]
				if a == nil || a.n == 0 {
					row = append(row, "-")
					continue
				}
				row = append(row, f3(a.sum/float64(a.n)))
			}
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes, fmt.Sprintf("post-change window days %d..%d", from, to))
	return res, nil
}

func runShares(e *Env, id, paper string, top func(m measure.Metrics) []measure.Share) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	day := st.Days() - 3
	res := &Result{
		Paper:  paper,
		Header: []string{"sample", "top-5 entries (label=share of detected)"},
	}
	addRow := func(label string, m measure.Metrics) {
		shares := top(m)
		cells := ""
		for i, s := range shares {
			if i > 0 {
				cells += "  "
			}
			cells += fmt.Sprintf("%s=%.1f%%", s.Label, 100*s.Share)
		}
		res.Rows = append(res.Rows, []string{label, cells})
	}
	for _, head := range []bool{true, false} {
		for _, p := range st.Providers() {
			m, err := measureList(e, p, day, head)
			if err != nil {
				return nil, err
			}
			label := p + " full"
			if head {
				label = fmt.Sprintf("%s head(%d)", p, st.Scale.HeadSize)
			}
			addRow(label, m)
		}
	}
	addRow("com/net/org", st.Campaign.Measure(st.PopulationNames(day), day))
	return res, nil
}

func runFig7b(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	return runShares(e, "fig7b",
		"Fig. 7b: top-5 CDN share >80% everywhere; Google dominates the population (71%) via private-hosted sites; Akamai & co dominate list heads",
		func(m measure.Metrics) []measure.Share { return st.Campaign.TopCDNShares(m, 5) })
}

func runFig7c(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	from, to := weekdayWindow(st)
	res := &Result{
		Paper:  "Fig. 7c: Alexa shows a strong weekend/weekday CDN-share pattern after its change; weekend days show more Google (private hosting)",
		Header: []string{"weekday", "alexa google-share", "alexa akamai-share"},
	}
	type acc struct {
		goog, akam, n float64
	}
	byWD := map[int]*acc{}
	for day := from; day < to; day++ {
		m, err := measureList(e, "alexa", day, false)
		if err != nil {
			return nil, err
		}
		shares := st.Campaign.TopCDNShares(m, 10)
		wd := int(toplist.Day(day).Weekday())
		if byWD[wd] == nil {
			byWD[wd] = &acc{}
		}
		for _, s := range shares {
			switch s.Label {
			case "Google":
				byWD[wd].goog += s.Share
			case "Akamai":
				byWD[wd].akam += s.Share
			}
		}
		byWD[wd].n++
	}
	weekdays := []string{"Sunday", "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday"}
	for wd := 0; wd < 7; wd++ {
		a := byWD[wd]
		if a == nil || a.n == 0 {
			continue
		}
		res.Rows = append(res.Rows, []string{
			weekdays[wd], pct(a.goog / a.n), pct(a.akam / a.n),
		})
	}
	return res, nil
}

func runFig7d(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	return runShares(e, "fig7d",
		"Fig. 7d: GoDaddy dominates the population (26%) but only 2.7-4.5% of web lists; top-5 AS share 40% population, ~53% heads, ~27% fulls",
		func(m measure.Metrics) []measure.Share { return st.Campaign.TopASShares(m, 5) })
}

func runFig8(e *Env) (*Result, error) {
	st, err := e.Study()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Paper:  "Fig. 8: HTTP/2 ~7.8% population, up to 26.6% Alexa 1M, ~35%+ for heads; weekday pattern for lists with weekly churn",
		Header: []string{"day", "alexa head", "alexa 1M", "umbrella head", "umbrella 1M", "majestic head", "majestic 1M", "c/n/o"},
	}
	for day := 0; day < st.Days(); day += 7 {
		row := []string{toplist.Day(day).String()}
		for _, p := range st.Providers() {
			for _, head := range []bool{true, false} {
				m, err := measureList(e, p, day, head)
				if err != nil {
					return nil, err
				}
				row = append(row, pct(m.HTTP2))
			}
		}
		pm := st.Campaign.Measure(st.PopulationNames(day), day)
		row = append(row, pct(pm.HTTP2))
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
