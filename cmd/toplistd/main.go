// Command toplistd publishes simulated top-list snapshots over HTTP,
// the way the real providers publish their daily CSVs. It simulates
// the ecosystem at the requested scale, then serves every provider's
// daily snapshot under
//
//	/v1/index
//	/v1/{provider}/latest/top-1m.csv[.gz|.zip]
//	/v1/{provider}/{date}/top-1m.csv[.gz|.zip]
//
// With -live, only day 0 is visible at startup and one more day is
// published per -live-interval, so a Mirror pointed at the daemon
// experiences a real longitudinal collection.
//
// Usage:
//
//	toplistd [-addr :8080] [-scale test|default] [-seed N] [-days N]
//	         [-live] [-live-interval 2s]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/listserv"
	"repro/internal/population"
	"repro/internal/toplist"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "toplistd:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("toplistd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	scaleName := fs.String("scale", "test", "simulation scale: test or default")
	seed := fs.Uint64("seed", 1, "root seed")
	days := fs.Int("days", 0, "override the simulated window length (days)")
	live := fs.Bool("live", false, "publish one day at a time instead of the whole archive")
	liveInterval := fs.Duration("live-interval", 2*time.Second, "publication interval in -live mode")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scale := core.TestScale()
	switch *scaleName {
	case "test":
	case "default":
		scale = core.DefaultScale()
	default:
		return fmt.Errorf("unknown scale %q (want test or default)", *scaleName)
	}
	scale.Population.Seed = *seed
	if *days > 0 {
		scale.Population.Days = *days
	}

	log.SetOutput(out)
	log.Printf("simulating at scale %q (seed %d)...", *scaleName, *seed)
	study, err := core.Run(scale)
	if err != nil {
		return err
	}
	arch := study.Archive
	log.Printf("archive ready: %d providers x %d days", len(arch.Providers()), arch.Days())

	firstVisible := arch.Last()
	if *live {
		firstVisible = arch.First()
	}
	gk := listserv.NewGatekeeper(arch, firstVisible)
	handler := listserv.NewServerAt(gk).WithZones(worldZones{study.World})
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("serving on http://%s/v1/index", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *live {
		go publishDaily(ctx, gk, arch.Last(), *liveInterval)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}

// worldZones publishes the simulated world's day-0 com/net/org zone
// files — the §8 general-population source — at /v1/zones/{tld}.zone.
type worldZones struct {
	w *population.World
}

func (z worldZones) ZoneTLDs() []string { return []string{"com", "net", "org"} }

func (z worldZones) ZoneDomains(tld string) []string { return z.w.ZoneDomains(0, tld) }

// publishDaily advances the gatekeeper one day per tick until the
// archive is fully published.
func publishDaily(ctx context.Context, gk *listserv.Gatekeeper, last toplist.Day, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for gk.LastVisible() < last {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			next := gk.LastVisible() + 1
			gk.Advance(next)
			log.Printf("published day %v", next)
		}
	}
}
