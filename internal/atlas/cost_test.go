package atlas

import (
	"math"
	"strings"
	"testing"

	"repro/internal/providers"
)

func costOpts() providers.Options {
	opts := providers.DefaultOptions(21, 2000)
	opts.BurnInDays = 30
	opts.AlexaChangeDay = -1 // no regime change inside the attack window
	return opts
}

func TestMinimalClientsUmbrella(t *testing.T) {
	m := model(t)
	res, err := MinimalClients(m, CostConfig{
		Provider:   providers.Umbrella,
		TargetRank: 2000, // enter the list at all
		Days:       21,
		MaxClients: 1e7,
		Opts:       costOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients <= 1 || res.Clients >= 1e7 {
		t.Errorf("cost = %v clients/day, want interior of search range", res.Clients)
	}
	if res.FinalRank == 0 || res.FinalRank > 2000 {
		t.Errorf("final rank = %d", res.FinalRank)
	}
	if res.EntryDay < 0 {
		t.Errorf("entry day = %d", res.EntryDay)
	}
	t.Logf("umbrella entry cost: %.0f clients/day, entered day %d, final rank %d (%d evals)",
		res.Clients, res.EntryDay, res.FinalRank, res.Evaluations)
}

func TestMinimalClientsHeadCostsMoreThanTail(t *testing.T) {
	m := model(t)
	base := CostConfig{
		Provider:   providers.Umbrella,
		Days:       21,
		MaxClients: 1e8,
		Opts:       costOpts(),
	}
	tail := base
	tail.TargetRank = 2000
	head := base
	head.TargetRank = 100

	tailRes, err := MinimalClients(m, tail)
	if err != nil {
		t.Fatal(err)
	}
	headRes, err := MinimalClients(m, head)
	if err != nil {
		t.Fatal(err)
	}
	if headRes.Clients <= tailRes.Clients {
		t.Errorf("head cost %.0f should exceed tail cost %.0f",
			headRes.Clients, tailRes.Clients)
	}
	t.Logf("umbrella: tail %.0f vs head %.0f clients/day (x%.1f)",
		tailRes.Clients, headRes.Clients, headRes.Clients/tailRes.Clients)
}

func TestMinimalClientsAllProvidersReachable(t *testing.T) {
	// All three mechanisms are now injectable; each must admit an
	// entry-level attack within the search bound, and Majestic's slow
	// window must show the largest inertia (latest entry day).
	m := model(t)
	entryDay := map[string]int{}
	for _, prov := range []string{providers.Alexa, providers.Umbrella, providers.Majestic} {
		res, err := MinimalClients(m, CostConfig{
			Provider:   prov,
			TargetRank: 2000,
			Days:       21,
			MaxClients: 1e8,
			Opts:       costOpts(),
		})
		if err != nil {
			t.Fatalf("%s: %v", prov, err)
		}
		if res.FinalRank == 0 {
			t.Fatalf("%s: not listed at found cost", prov)
		}
		entryDay[prov] = res.EntryDay
		t.Logf("%s: %.0f clients/day, entry day %d, final rank %d",
			prov, res.Clients, res.EntryDay, res.FinalRank)
	}
	if entryDay[providers.Majestic] < entryDay[providers.Umbrella] {
		t.Errorf("majestic entry day %d should not precede umbrella's %d (90d vs short window)",
			entryDay[providers.Majestic], entryDay[providers.Umbrella])
	}
}

func TestMinimalClientsUnreachableTarget(t *testing.T) {
	m := model(t)
	_, err := MinimalClients(m, CostConfig{
		Provider:   providers.Umbrella,
		TargetRank: 1,
		Days:       5,
		MaxClients: 2, // absurdly low bound
		Opts:       costOpts(),
	})
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("err = %v, want unreachable", err)
	}
}

func TestMinimalClientsValidation(t *testing.T) {
	m := model(t)
	cases := []CostConfig{
		{Provider: providers.Umbrella, TargetRank: 10, Days: 1, MaxClients: 100, Opts: costOpts()},
		{Provider: providers.Umbrella, TargetRank: 0, Days: 10, MaxClients: 100, Opts: costOpts()},
		{Provider: providers.Umbrella, TargetRank: 10, Days: 10, MaxClients: 0.5, Opts: costOpts()},
		{Provider: "bing", TargetRank: 10, Days: 10, MaxClients: 100, Opts: costOpts()},
	}
	for i, cfg := range cases {
		if _, err := MinimalClients(m, cfg); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestGeoMid(t *testing.T) {
	if got := geoMid(1, 100); math.Abs(got-10) > 1e-9 {
		t.Errorf("geoMid(1,100) = %v", got)
	}
}
