package shard

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func testFrame() *Frame {
	return &Frame{
		Day:     7,
		Lo:      10,
		Hi:      14,
		Started: true,
		Fields: []Field{
			{Provider: "alexa", Values: []float64{1.5, -2.25, 0, 1e300}},
			{Provider: "umbrella", Values: []float64{math.Inf(1), math.SmallestNonzeroFloat64, -0.0, 42}},
		},
	}
}

func TestWireRoundTrip(t *testing.T) {
	f := testFrame()
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Day != f.Day || got.Lo != f.Lo || got.Hi != f.Hi || got.Started != f.Started {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Fields) != len(f.Fields) {
		t.Fatalf("%d fields", len(got.Fields))
	}
	for i := range f.Fields {
		if got.Fields[i].Provider != f.Fields[i].Provider {
			t.Fatalf("field %d name %q", i, got.Fields[i].Provider)
		}
		for j := range f.Fields[i].Values {
			if math.Float64bits(got.Fields[i].Values[j]) != math.Float64bits(f.Fields[i].Values[j]) {
				t.Fatalf("field %d value %d not bitwise identical", i, j)
			}
		}
	}
	// Canonical: re-encoding the decoded frame reproduces the bytes.
	b2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("re-encode differs")
	}
}

func TestWireNegativeDay(t *testing.T) {
	f := testFrame()
	f.Day = -42 // burn-in days are negative
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Day != -42 {
		t.Fatalf("day %d", got.Day)
	}
}

func TestWireCorruption(t *testing.T) {
	f := testFrame()
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit at every position: every mutation must fail with a
	// typed error (structure or hash), never decode successfully —
	// there is no byte in the frame whose corruption is survivable.
	for i := range b {
		mut := bytes.Clone(b)
		mut[i] ^= 0x40
		got, err := Decode(mut)
		if err == nil {
			t.Fatalf("bit flip at byte %d decoded successfully: %+v", i, got)
		}
		if !errors.Is(err, ErrBadFrame) && !errors.Is(err, ErrFrameHash) {
			t.Fatalf("bit flip at byte %d: untyped error %v", i, err)
		}
	}
	// Truncations at every length.
	for n := 0; n < len(b); n++ {
		if _, err := Decode(b[:n]); !errors.Is(err, ErrBadFrame) && !errors.Is(err, ErrFrameHash) {
			t.Fatalf("truncation to %d bytes: %v", n, err)
		}
	}
	// Trailing garbage.
	if _, err := Decode(append(bytes.Clone(b), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestWireEncodeValidation(t *testing.T) {
	bad := testFrame()
	bad.Fields[0].Values = bad.Fields[0].Values[:2] // wrong span
	if _, err := bad.Encode(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("span mismatch: %v", err)
	}
	bad = testFrame()
	bad.Fields = nil
	if _, err := bad.Encode(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("no fields: %v", err)
	}
	bad = testFrame()
	bad.Fields[0].Provider = ""
	if _, err := bad.Encode(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("empty name: %v", err)
	}
	bad = testFrame()
	bad.Lo, bad.Hi = 5, 4
	if _, err := bad.Encode(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("inverted range: %v", err)
	}
}

func TestWireFieldLookup(t *testing.T) {
	f := testFrame()
	if f.Field("alexa") == nil || f.Field("umbrella") == nil {
		t.Fatal("present field not found")
	}
	if f.Field("majestic") != nil {
		t.Fatal("absent field found")
	}
}
