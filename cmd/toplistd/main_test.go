package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/listserv"
	"repro/internal/toplist"
)

func discard() *log.Logger { return log.New(io.Discard, "", 0) }

// TestErrorClasses: invocation mistakes are usageErrors (main exits 2),
// operational failures are plain errors (main exits 1).
func TestErrorClasses(t *testing.T) {
	cases := []struct {
		name      string
		args      []string
		wantUsage bool
	}{
		{"unknown flag", []string{"-notaflag"}, true},
		{"positional arg", []string{"stray"}, true},
		{"bogus scale", []string{"-scale", "bogus"}, true},
		{"archive and pack", []string{"-archive", "x", "-serve-pack", "y"}, true},
		{"archive and live", []string{"-archive", "x", "-live"}, true},
		{"pack and live", []string{"-serve-pack", "y", "-live"}, true},
		{"archive and shard-worker", []string{"-archive", "x", "-shard-worker", "http://w:1"}, true},
		{"pack and shard-worker", []string{"-serve-pack", "y", "-shard-worker", "http://w:1"}, true},
		{"reload-poll without source", []string{"-reload-poll", "1s"}, true},
		{"negative reload-poll", []string{"-archive", "x", "-reload-poll", "-1s"}, true},
		{"negative limit", []string{"-limit", "-1"}, true},
		{"missing pack file", []string{"-serve-pack", "/does/not/exist.pack", "-addr", "127.0.0.1:0"}, false},
		{"missing archive dir", []string{"-archive", "/does/not/exist", "-addr", "127.0.0.1:0"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, nil)
			if err == nil {
				t.Fatal("want error, got nil")
			}
			var ue *usageError
			if got := errors.As(err, &ue); got != tc.wantUsage {
				t.Fatalf("usageError = %v (err %v), want %v", got, err, tc.wantUsage)
			}
		})
	}
}

func TestRunBadListenAddrIsOperational(t *testing.T) {
	dir := t.TempDir()
	ds, err := toplist.CreateDiskStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("alexa", 0, toplist.New([]string{"a.com"})); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-archive", dir, "-addr", "256.0.0.1:http:nope"}, nil)
	if err == nil {
		t.Fatal("bad address should fail")
	}
	var ue *usageError
	if errors.As(err, &ue) {
		t.Fatalf("listen failure classified as usage error: %v", err)
	}
}

func TestLiveSinkStreamsAndPublishes(t *testing.T) {
	arch := toplist.NewArchive(0, 3)
	arch.Expect("alexa")
	gk := listserv.NewGatekeeper(arch, -1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	sink := newLiveSink(ctx, gk, time.Millisecond, discard())
	defer sink.stop()
	for d := toplist.Day(0); d <= 3; d++ {
		if err := sink.Put("alexa", d, toplist.New([]string{"a.com"})); err != nil {
			t.Fatal(err)
		}
		// The snapshot is stored but not yet visible to readers.
		if got := gk.LastVisible(); got >= d {
			t.Fatalf("day %v visible before EndDay (LastVisible=%v)", d, got)
		}
		if err := sink.EndDay(d); err != nil {
			t.Fatal(err)
		}
		if got := gk.LastVisible(); got != d {
			t.Fatalf("LastVisible = %v after EndDay(%v)", got, d)
		}
	}
	if !arch.Complete() {
		t.Fatal("streamed archive incomplete")
	}
}

func TestLiveSinkStopsOnCancel(t *testing.T) {
	arch := toplist.NewArchive(0, 1000)
	gk := listserv.NewGatekeeper(arch, -1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sink := newLiveSink(ctx, gk, time.Hour, discard())
	defer sink.stop()
	done := make(chan error, 1)
	go func() { done <- sink.EndDay(0) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("EndDay on cancelled context should error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("EndDay ignored cancellation")
	}
}

// buildArchive creates a small on-disk archive and returns the open
// writer handle (for regrowing it mid-test) and its directory.
func buildArchive(t *testing.T, last toplist.Day) (*toplist.DiskStore, string) {
	t.Helper()
	dir := t.TempDir()
	ds, err := toplist.CreateDiskStore(dir, 0, last)
	if err != nil {
		t.Fatal(err)
	}
	for d := toplist.Day(0); d <= last; d++ {
		names := []string{fmt.Sprintf("day%d.com", d), "stable.org", "example.net"}
		if err := ds.Put("alexa", d, toplist.New(names)); err != nil {
			t.Fatal(err)
		}
	}
	return ds, dir
}

// TestArchiveAPIMountsBesideCSVRoutes: with -serve-archive both
// surfaces share one daemon — the provider-style CSV routes keep
// working, the wire API serves the same source to OpenRemote, and
// /metrics reports the traffic.
func TestArchiveAPIMountsBesideCSVRoutes(t *testing.T) {
	_, dir := buildArchive(t, 1)
	cfg, err := parseFlags([]string{"-archive", dir, "-serve-archive", "-access-log=false"})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := build(context.Background(), cfg, discard())
	if err != nil {
		t.Fatal(err)
	}
	defer comp.close()
	ts := httptest.NewServer(comp.handler)
	defer ts.Close()

	// Provider-style route still answers.
	idx, err := listserv.NewClient(ts.URL).Index(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if idx.Days != 2 {
		t.Fatalf("CSV index days = %d, want 2", idx.Days)
	}

	// Wire API answers on the same listener.
	remote, err := toplist.OpenRemote(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if remote.Days() != 2 {
		t.Fatalf("remote days = %d, want 2", remote.Days())
	}
	got := remote.Get("alexa", 1)
	if got == nil || got.Len() != 3 || got.Name(2) != "stable.org" {
		t.Fatalf("remote snapshot = %v", got)
	}

	// The middleware saw all of it.
	if n := comp.metrics.RequestCount("/v1/index"); n == 0 {
		t.Fatal("metrics recorded no /v1/index requests")
	}
	if n := comp.metrics.RequestCount("/archive/v1/snapshots"); n == 0 {
		t.Fatal("metrics recorded no wire-API snapshot requests")
	}
}

func get(t *testing.T, client *http.Client, url string) (int, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestHotSwapUnderLoad is the swap-under-load guarantee: while readers
// hammer both the CSV routes and the wire API through a real socket,
// the on-disk archive is regrown and hot-reloaded repeatedly. No
// request may fail, no body may be torn, and a day-0 snapshot must be
// byte-identical before, during, and after every swap.
func TestHotSwapUnderLoad(t *testing.T) {
	writer, dir := buildArchive(t, 1)
	cfg, err := parseFlags([]string{"-archive", dir, "-serve-archive", "-access-log=false", "-limit", "0"})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := build(context.Background(), cfg, discard())
	if err != nil {
		t.Fatal(err)
	}
	defer comp.close()
	ts := httptest.NewServer(comp.handler)
	defer ts.Close()
	client := ts.Client()

	urls := []string{
		ts.URL + "/v1/index",
		ts.URL + "/v1/alexa/2017-06-06/top-1m.csv",
		ts.URL + "/v1/alexa/2017-06-06/top-1m.csv.gz",
		ts.URL + toplist.RemoteAPIPrefix + "/snapshots/alexa/" + toplist.Day(0).String(),
		ts.URL + toplist.RemoteManifestPath(),
		ts.URL + "/metrics",
	}
	// Day 0 is never touched by the regrow, so its bytes must be stable
	// across every swap. (/v1/index and the manifest legitimately change.)
	stable := map[string][]byte{}
	for _, u := range urls[1:4] {
		status, body := get(t, client, u)
		if status != http.StatusOK {
			t.Fatalf("GET %s = %d", u, status)
		}
		stable[u] = body
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var failures atomic.Int64
	var requests atomic.Int64
	errc := make(chan string, 1)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for n := 0; ctx.Err() == nil; n++ {
				u := urls[(worker+n)%len(urls)]
				resp, err := client.Get(u)
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					failures.Add(1)
					select {
					case errc <- fmt.Sprintf("GET %s: %v", u, err):
					default:
					}
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				requests.Add(1)
				msg := ""
				switch {
				case err != nil:
					msg = fmt.Sprintf("GET %s read: %v", u, err)
				case resp.StatusCode >= 500:
					msg = fmt.Sprintf("GET %s = %d during swap", u, resp.StatusCode)
				default:
					if want, ok := stable[u]; ok && string(body) != string(want) {
						msg = fmt.Sprintf("GET %s: torn/stale body (%d bytes, want %d)", u, len(body), len(want))
					}
				}
				if msg != "" {
					failures.Add(1)
					select {
					case errc <- msg:
					default:
					}
					return
				}
			}
		}(i)
	}

	// Regrow the archive on disk and hot-swap it in, repeatedly, while
	// the readers run.
	const swaps = 10
	for i := 1; i <= swaps; i++ {
		day := toplist.Day(1 + i)
		if err := writer.ExtendTo(day); err != nil {
			t.Fatal(err)
		}
		if err := writer.Put("alexa", day, toplist.New([]string{fmt.Sprintf("day%d.com", day), "stable.org"})); err != nil {
			t.Fatal(err)
		}
		if err := comp.reload(); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d reader failures, first: %s", n, <-errc)
	}
	if requests.Load() == 0 {
		t.Fatal("hammer made no requests")
	}

	// The reload was observable: the CSV index and the wire API both see
	// the regrown window.
	idx, err := listserv.NewClient(ts.URL).Index(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 + swaps; idx.Days != want {
		t.Fatalf("index days after reloads = %d, want %d", idx.Days, want)
	}
	status, body := get(t, client, ts.URL+toplist.RemoteAPIPrefix+"/snapshots/alexa/"+toplist.Day(1+swaps).String())
	if status != http.StatusOK {
		t.Fatalf("new day over wire API = %d (%s)", status, body)
	}
	if n := comp.metrics.RequestCount("/v1/snapshot"); n == 0 {
		t.Fatal("metrics recorded no snapshot requests")
	}
}

// TestLoadShedding: a saturated limiter sheds with 503 + Retry-After
// and counts it, instead of queueing without bound. The single slot is
// held deterministically: the first request's body is far larger than
// the socket buffers and the client refuses to read it, so its handler
// blocks mid-write while the second request arrives.
func TestLoadShedding(t *testing.T) {
	dir := t.TempDir()
	ds, err := toplist.CreateDiskStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 300_000)
	for i := range names {
		names[i] = fmt.Sprintf("filler-%06d.example.com", i)
	}
	if err := ds.Put("alexa", 0, toplist.New(names)); err != nil {
		t.Fatal(err)
	}

	cfg, err := parseFlags([]string{"-archive", dir, "-access-log=false", "-limit", "1"})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := build(context.Background(), cfg, discard())
	if err != nil {
		t.Fatal(err)
	}
	defer comp.close()
	ts := httptest.NewServer(comp.handler)
	defer ts.Close()

	// Occupy the only slot: ~8MB of CSV cannot fit in kernel buffers,
	// so the handler stays blocked in Write until we read the body.
	slow, err := ts.Client().Get(ts.URL + "/v1/alexa/2017-06-06/top-1m.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Body.Close()
	if slow.StatusCode != http.StatusOK {
		t.Fatalf("slot-holding request = %d", slow.StatusCode)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/index")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated limiter returned %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if comp.metrics.ShedCount() == 0 {
		t.Fatal("shed counter did not move")
	}

	// Draining the slot readmits traffic.
	if _, err := io.Copy(io.Discard, slow.Body); err != nil {
		t.Fatal(err)
	}
	slow.Body.Close()
	status, _ := get(t, ts.Client(), ts.URL+"/v1/index")
	if status != http.StatusOK {
		t.Fatalf("after drain: %d, want 200", status)
	}
}
