package stats

// StringSet is a set of strings with the operations the list analyses
// need.
type StringSet map[string]struct{}

// NewStringSet builds a set from items.
func NewStringSet(items []string) StringSet {
	s := make(StringSet, len(items))
	for _, it := range items {
		s[it] = struct{}{}
	}
	return s
}

// Add inserts item.
func (s StringSet) Add(item string) { s[item] = struct{}{} }

// Has reports membership.
func (s StringSet) Has(item string) bool {
	_, ok := s[item]
	return ok
}

// Len reports the set size.
func (s StringSet) Len() int { return len(s) }

// IntersectionCount returns |s ∩ t|.
func (s StringSet) IntersectionCount(t StringSet) int {
	small, big := s, t
	if len(big) < len(small) {
		small, big = big, small
	}
	n := 0
	for k := range small {
		if _, ok := big[k]; ok {
			n++
		}
	}
	return n
}

// DifferenceCount returns |s \ t|.
func (s StringSet) DifferenceCount(t StringSet) int {
	n := 0
	for k := range s {
		if _, ok := t[k]; !ok {
			n++
		}
	}
	return n
}

// Difference returns the elements of s not in t.
func (s StringSet) Difference(t StringSet) []string {
	var out []string
	for k := range s {
		if _, ok := t[k]; !ok {
			out = append(out, k)
		}
	}
	return out
}

// Jaccard returns |s ∩ t| / |s ∪ t| (0 for two empty sets).
func (s StringSet) Jaccard(t StringSet) float64 {
	inter := s.IntersectionCount(t)
	union := len(s) + len(t) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// IntersectionCount3 returns |a ∩ b ∩ c|.
func IntersectionCount3(a, b, c StringSet) int {
	// Iterate over the smallest set.
	smallest := a
	if b.Len() < smallest.Len() {
		smallest = b
	}
	if c.Len() < smallest.Len() {
		smallest = c
	}
	n := 0
	for k := range smallest {
		if a.Has(k) && b.Has(k) && c.Has(k) {
			n++
		}
	}
	return n
}

// IDSet is a set of compact domain IDs (uint32) used on hot paths where
// string hashing would dominate.
type IDSet map[uint32]struct{}

// NewIDSet builds a set from ids.
func NewIDSet(ids []uint32) IDSet {
	s := make(IDSet, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s IDSet) Has(id uint32) bool {
	_, ok := s[id]
	return ok
}

// Add inserts id.
func (s IDSet) Add(id uint32) { s[id] = struct{}{} }

// IntersectionCount returns |s ∩ t|.
func (s IDSet) IntersectionCount(t IDSet) int {
	small, big := s, t
	if len(big) < len(small) {
		small, big = big, small
	}
	n := 0
	for k := range small {
		if _, ok := big[k]; ok {
			n++
		}
	}
	return n
}

// RemovedCount returns how many elements of s are absent from t — the
// paper's daily-change metric µ∆ counts domains present on day n but not
// on day n+1 (Fig. 1b).
func (s IDSet) RemovedCount(t IDSet) int {
	n := 0
	for k := range s {
		if _, ok := t[k]; !ok {
			n++
		}
	}
	return n
}
