// Command mirrord is a self-healing archive mirror: it keeps a local
// durable archive (toplist.DiskStore) continuously replicated from one
// or more peer archive servers speaking the versioned /archive/v1 wire
// API (cmd/toplistd -serve-archive, cmd/mirrord itself, or anything
// mounting internal/archived), and serves the same wire API over its
// own copy — so mirrors chain into a fleet where every node replicates
// from every other and any node can die or rot without data loss.
//
// Replication is conditional and byte-oriented: each sync round costs
// one If-None-Match manifest GET per peer — answered 304 in steady
// state, because the manifest ETag covers a fingerprint of every
// stored slot — and only a changed manifest triggers a walk that
// byte-copies missing snapshots (GetRaw → PutRaw; no CSV is decoded
// beyond PutRaw's single write-validation pass). Peers are health
// tracked: a dead or flapping peer enters jittered exponential backoff
// and the round simply proceeds with the others.
//
// With -verify-every, the local archive is periodically integrity
// swept (DiskStore.Verify); slots that fail — bit rot, truncation,
// external modification — are removed from the mirror's has-view and
// re-fetched from the healthiest peer holding a copy with the locally
// persisted content hash, so on-disk corruption heals from the fleet
// automatically.
//
// A missing local archive is bootstrapped from the first reachable
// peer's manifest (range, scale, expected providers), retrying until
// one answers — so an entire fleet can be started in any order.
//
// /metrics exposes the serving-core series plus the fleet counters
// (slots copied, manifest 304s, peer failures, corrupt slots healed,
// rounds, sweeps) and a per-peer replication-lag gauge.
//
// Usage:
//
//	mirrord -archive DIR -peer URL [-peer URL ...] [-addr :8801]
//	        [-sync-every 30s] [-verify-every 10m] [-once]
//	        [-limit N] [-access-log=false]
//
// Exit status: 0 on success, 2 for invocation errors, 1 for
// operational failures.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/archived"
	"repro/internal/fleet"
	"repro/internal/serve"
	"repro/internal/toplist"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mirrord:", err)
		var ue *usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

const usage = `usage: mirrord -archive DIR -peer URL [-peer URL ...] [-addr :8801]
               [-sync-every 30s] [-verify-every 10m] [-once]
               [-limit N] [-access-log=false]`

// usageError is an invocation mistake, printed with the synopsis and
// exited 2 — the same "called wrong" vs "ran and failed" split the
// other commands make.
type usageError struct {
	msg string
}

func (e *usageError) Error() string { return e.msg + "\n" + usage }

func badUsage(format string, a ...any) *usageError {
	return &usageError{msg: fmt.Sprintf(format, a...)}
}

// peerList collects repeated -peer flags.
type peerList []string

func (p *peerList) String() string { return fmt.Sprint([]string(*p)) }

func (p *peerList) Set(v string) error {
	*p = append(*p, v)
	return nil
}

type config struct {
	archiveDir  string
	peers       []string
	addr        string
	syncEvery   time.Duration
	verifyEvery time.Duration
	once        bool
	limit       int
	accessLog   bool
}

func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("mirrord", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	archiveDir := fs.String("archive", "", "local archive directory (created from a peer when absent)")
	var peers peerList
	fs.Var(&peers, "peer", "peer archive wire API base URL (repeatable)")
	addr := fs.String("addr", ":8801", "listen address for the local wire API and /metrics")
	syncEvery := fs.Duration("sync-every", 30*time.Second, "replication round interval")
	verifyEvery := fs.Duration("verify-every", 10*time.Minute, "local integrity-sweep interval (0 = disabled)")
	once := fs.Bool("once", false, "one sync round (after a sweep) and exit; no server")
	limit := fs.Int("limit", 1024, "max concurrent requests before shedding with 503 (0 = unlimited)")
	accessLog := fs.Bool("access-log", true, "log one line per request")
	if err := fs.Parse(args); err != nil {
		return nil, badUsage("%v", err)
	}
	if fs.NArg() > 0 {
		return nil, badUsage("unexpected argument %q", fs.Arg(0))
	}
	if *archiveDir == "" {
		return nil, badUsage("-archive is required")
	}
	if len(peers) == 0 {
		return nil, badUsage("at least one -peer is required")
	}
	if *syncEvery <= 0 {
		return nil, badUsage("-sync-every must be > 0")
	}
	if *verifyEvery < 0 {
		return nil, badUsage("-verify-every must be >= 0")
	}
	if *limit < 0 {
		return nil, badUsage("-limit must be >= 0")
	}
	return &config{
		archiveDir:  *archiveDir,
		peers:       peers,
		addr:        *addr,
		syncEvery:   *syncEvery,
		verifyEvery: *verifyEvery,
		once:        *once,
		limit:       *limit,
		accessLog:   *accessLog,
	}, nil
}

func run(args []string, logw io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	logger := log.New(logw, "mirrord: ", log.LstdFlags)

	ctx, stop := serve.SignalContext(context.Background())
	defer stop()

	peers, err := fleet.NewPeerSet(cfg.peers)
	if err != nil {
		return err
	}
	store, err := bootstrapWithRetry(ctx, cfg.archiveDir, peers, logger)
	if err != nil {
		return err
	}
	logger.Printf("archive %s: %d providers x %d days", cfg.archiveDir, len(store.Providers()), store.Days())

	metrics := serve.NewMetrics()
	mirror := fleet.NewMirror(store, peers,
		fleet.WithMirrorLogger(logger),
		fleet.WithMirrorMetrics(metrics))

	if cfg.once {
		if cfg.verifyEvery > 0 {
			mirror.VerifySweep()
		}
		mirror.SyncOnce(ctx)
		logger.Printf("once: copied=%d healed=%d 304s=%d peer-failures=%d",
			mirror.Copied(), mirror.Healed(), mirror.NotModified(), mirror.PeerFailures())
		return ctx.Err()
	}

	mux := http.NewServeMux()
	archived.NewServer(store, archived.WithMux(mux))
	mux.Handle("GET /metrics", metrics.Handler())
	var accessLogger *log.Logger
	if cfg.accessLog {
		accessLogger = logger
	}
	daemon := &serve.Daemon{
		Addr: cfg.addr,
		Handler: serve.Chain(mux,
			metrics.Instrument(serve.RouteLabel),
			serve.AccessLog(accessLogger),
			serve.Limit(cfg.limit, metrics),
			serve.Recover(logger, metrics),
		),
		Logger:     logger,
		Background: mirror.Loops(cfg.syncEvery, cfg.verifyEvery),
	}
	addr, err := daemon.Listen()
	if err != nil {
		return err
	}
	logger.Printf("serving %s on http://%s (syncing %d peers every %s)",
		toplist.RemoteAPIPrefix, addr, len(peers.Peers()), cfg.syncEvery)
	return daemon.Run(ctx)
}

// bootstrapWithRetry opens (or creates from a peer) the local archive,
// retrying while no peer is reachable — fleets start in any order, and
// a mirror whose peers are still booting must wait, not die.
func bootstrapWithRetry(ctx context.Context, dir string, peers *fleet.PeerSet, logger *log.Logger) (*toplist.DiskStore, error) {
	for wait := time.Second; ; {
		store, err := fleet.Bootstrap(ctx, dir, peers)
		if err == nil {
			return store, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		logger.Printf("bootstrap: %v (retrying in %s)", err, wait)
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, err
		case <-t.C:
		}
		if wait < 10*time.Second {
			wait *= 2
		}
	}
}
