#!/bin/sh
# Chaos smoke test for the self-healing archive fleet (internal/fleet,
# cmd/mirrord): boot a 3-node fleet from the real binaries — toplistd
# serving a seed archive, two mirrord processes peered with the seed
# and with each other — wait for convergence, then kill -9 the seed
# and corrupt a snapshot on one mirror's disk. The survivors must fail
# over, heal the corruption from each other, report 304-only
# steady-state rounds, and render table5 byte-identically to the
# pre-chaos original. Run from the repository root:
# sh scripts/fleet-chaos.sh
set -eu

addr_a="127.0.0.1:18601"
addr_b="127.0.0.1:18602"
addr_c="127.0.0.1:18603"
url_a="http://$addr_a"
url_b="http://$addr_b"
url_c="http://$addr_c"
workdir="$(mktemp -d)"
pid_a=""
pid_b=""
pid_c=""
cleanup() {
    for p in "$pid_a" "$pid_b" "$pid_c"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "==> seeding node A's archive and rendering the reference table5"
go run ./cmd/toplists rank example.com -scale test -days 8 \
    -save "$workdir/a" >/dev/null
go run ./cmd/toplists experiment table5 -scale test -days 8 \
    -archive "$workdir/a" >"$workdir/ref.txt"

echo "==> building toplistd and mirrord"
go build -o "$workdir/toplistd" ./cmd/toplistd
go build -o "$workdir/mirrord" ./cmd/mirrord

echo "==> starting the 3-node fleet"
"$workdir/toplistd" -addr "$addr_a" -archive "$workdir/a" \
    -serve-archive -access-log=false >"$workdir/a.log" 2>&1 &
pid_a=$!
"$workdir/mirrord" -addr "$addr_b" -archive "$workdir/b" \
    -peer "$url_a" -peer "$url_c" \
    -sync-every 200ms -verify-every 500ms -access-log=false \
    >"$workdir/b.log" 2>&1 &
pid_b=$!
"$workdir/mirrord" -addr "$addr_c" -archive "$workdir/c" \
    -peer "$url_a" -peer "$url_b" \
    -sync-every 200ms -verify-every 500ms -access-log=false \
    >"$workdir/c.log" 2>&1 &
pid_c=$!

manifest_content() { # manifest_content <base-url>
    curl -fs "$1/archive/v1/manifest" 2>/dev/null \
        | tr ',' '\n' | sed -n 's/.*"content":"\([^"]*\)".*/\1/p'
}

metric() { # metric <base-url> <series> — value, or empty
    curl -fs "$1/metrics" 2>/dev/null | awk -v s="$2" '$1 == s {print $2; exit}'
}

wait_for() { # wait_for <what> <seconds> <cmd...>
    what="$1"; tries="$2"; shift 2
    i=0
    while [ "$i" -lt "$tries" ]; do
        if "$@"; then return 0; fi
        sleep 1
        i=$((i + 1))
    done
    echo "FAIL: timed out waiting for $what" >&2
    for log in "$workdir"/a.log "$workdir"/b.log "$workdir"/c.log; do
        echo "--- $log ---" >&2
        tail -n 20 "$log" >&2 || true
    done
    exit 1
}

converged() {
    want="$(manifest_content "$url_a")"
    [ -n "$want" ] || return 1
    [ "$(manifest_content "$url_b")" = "$want" ] || return 1
    [ "$(manifest_content "$url_c")" = "$want" ] || return 1
}
echo "==> waiting for B and C to replicate the seed"
wait_for "fleet convergence" 60 converged
echo "    all three manifests fingerprint-identical"

echo "==> chaos: kill -9 node A, corrupt a snapshot on node B's disk"
kill -9 "$pid_a"
pid_a=""
slot="$(ls "$workdir"/b/alexa/*.csv.gz | head -n 1)"
printf 'rotten bytes' >"$slot"

healed() {
    h="$(metric "$url_b" fleet_corrupt_healed_total)"
    [ -n "$h" ] && [ "$h" -ge 1 ]
}
wait_for "node B to heal the corrupted slot" 60 healed
echo "    fleet_corrupt_healed_total=$(metric "$url_b" fleet_corrupt_healed_total)"

echo "==> survivors reconverge without the seed"
reconverged() {
    want="$(manifest_content "$url_b")"
    [ -n "$want" ] && [ "$(manifest_content "$url_c")" = "$want" ]
}
wait_for "survivor reconvergence" 60 reconverged

echo "==> steady state is conditional: 304s observed, peer failures counted"
nm="$(metric "$url_b" fleet_manifest_304_total)"
if [ -z "$nm" ] || [ "$nm" -lt 1 ]; then
    echo "FAIL: fleet_manifest_304_total is ${nm:-absent} on node B" >&2
    exit 1
fi
pf="$(metric "$url_b" fleet_peer_failures_total)"
if [ -z "$pf" ] || [ "$pf" -lt 1 ]; then
    echo "FAIL: node A was killed but fleet_peer_failures_total is ${pf:-absent}" >&2
    exit 1
fi
echo "    304s=$nm peer-failures=$pf"

echo "==> both survivors render table5 byte-identically to the original"
for node in b c; do
    go run ./cmd/toplists experiment table5 -scale test -days 8 \
        -archive "$workdir/$node" >"$workdir/$node.txt"
    if ! diff -q "$workdir/ref.txt" "$workdir/$node.txt" >/dev/null; then
        echo "FAIL: node $node renders a different table5" >&2
        diff "$workdir/ref.txt" "$workdir/$node.txt" >&2 || true
        exit 1
    fi
done

echo "PASS: fleet chaos"
