package core

import (
	"testing"

	"repro/internal/providers"
	"repro/internal/toplist"
)

func TestScaleValidation(t *testing.T) {
	if err := TestScale().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultScale().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := TestScale()
	bad.HeadSize = bad.ListSize
	if bad.Validate() == nil {
		t.Fatal("head >= list should fail")
	}
	bad = TestScale()
	bad.Population.Sites = 1
	if bad.Validate() == nil {
		t.Fatal("population errors should propagate")
	}
}

func TestRunStudy(t *testing.T) {
	s := TestScale()
	s.Population.Days = 20
	s.BurnInDays = 30
	st, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Days() != 20 {
		t.Fatalf("days %d", st.Days())
	}
	if !st.Archive.(*toplist.Archive).Complete() {
		t.Fatal("incomplete archive")
	}
	if st.ChangeDay() != 20*2/3 {
		t.Fatalf("change day %d", st.ChangeDay())
	}
	ps := st.Providers()
	if len(ps) != 3 || ps[0] != providers.Alexa {
		t.Fatalf("providers %v", ps)
	}
	full := st.ListNames(providers.Umbrella, 5, false)
	head := st.ListNames(providers.Umbrella, 5, true)
	if len(full) != s.ListSize || len(head) != s.HeadSize {
		t.Fatalf("list sizes %d/%d", len(full), len(head))
	}
	if st.ListNames("nope", 5, false) != nil {
		t.Fatal("unknown provider should be nil")
	}
	pop := st.PopulationNames(5)
	if len(pop) == 0 {
		t.Fatal("empty population")
	}
	if st.Analysis == nil || st.Campaign == nil {
		t.Fatal("analysis layers missing")
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	bad := TestScale()
	bad.ListSize = 5
	if _, err := Run(bad); err == nil {
		t.Fatal("bad scale should fail")
	}
}
