package measure

import (
	"sort"
	"testing"

	"repro/internal/population"
)

var cachedWorld *population.World

func world(t *testing.T) *population.World {
	t.Helper()
	if cachedWorld == nil {
		w, err := population.Build(population.TestConfig())
		if err != nil {
			t.Fatal(err)
		}
		cachedWorld = w
	}
	return cachedWorld
}

func TestMeasurePopulation(t *testing.T) {
	w := world(t)
	c := NewCampaign(w)
	pop := w.ComNetOrg(10)
	m := c.MeasureIDs(pop, 10)
	if m.N != len(pop) {
		t.Fatalf("N %d", m.N)
	}
	// Basic range checks.
	for name, v := range map[string]float64{
		"nx": m.NXDOMAIN, "ipv6": m.IPv6, "caa": m.CAA,
		"cname": m.CNAME, "cdn": m.CDN, "tls": m.TLS,
		"hsts": m.HSTSofTLS, "h2": m.HTTP2,
	} {
		if v < 0 || v > 1 {
			t.Fatalf("%s share out of range: %v", name, v)
		}
	}
	// Population-level shapes from the paper's Table 5 last column:
	// small NXDOMAIN, TLS ~1/3, modest IPv6, tiny CAA/CDN, HTTP2 < TLS.
	if m.NXDOMAIN > 0.05 {
		t.Fatalf("population NXDOMAIN %.3f too high", m.NXDOMAIN)
	}
	if m.TLS < 0.15 || m.TLS > 0.6 {
		t.Fatalf("population TLS %.3f outside band", m.TLS)
	}
	if m.CAA > 0.02 {
		t.Fatalf("population CAA %.4f too high", m.CAA)
	}
	if m.CDN > 0.08 {
		t.Fatalf("population CDN %.4f too high", m.CDN)
	}
	if m.IPv6 > 0.15 {
		t.Fatalf("population IPv6 %.3f too high", m.IPv6)
	}
	if m.UniqueAS4 == 0 || m.UniqueAS6 == 0 {
		t.Fatal("no AS diversity")
	}
	if m.UniqueAS6 > m.UniqueAS4 {
		t.Fatal("v6 AS count cannot exceed v4")
	}
}

func TestHeadExceedsPopulation(t *testing.T) {
	// The core Table 5 finding: the popularity head shows far higher
	// adoption than the general population.
	w := world(t)
	c := NewCampaign(w)
	pop := w.ComNetOrg(10)
	popM := c.MeasureIDs(pop, 10)

	// Build a "head" sample: the most popular web-visible base domains.
	bids := w.BaseIDs()
	type cand struct {
		id  uint32
		pop float64
	}
	var cands []cand
	for _, id := range bids {
		d := &w.Domains[id]
		if d.Category.NeverResolves() {
			continue
		}
		cands = append(cands, cand{id, d.WebPop})
	}
	for i := 0; i < 200; i++ {
		for j := i + 1; j < len(cands); j++ {
			if cands[j].pop > cands[i].pop {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
	}
	head := make([]uint32, 200)
	for i := 0; i < 200; i++ {
		head[i] = cands[i].id
	}
	headM := c.MeasureIDs(head, 10)
	if headM.TLS <= popM.TLS {
		t.Fatalf("head TLS %.3f <= population %.3f", headM.TLS, popM.TLS)
	}
	if headM.IPv6 <= popM.IPv6 {
		t.Fatalf("head IPv6 %.3f <= population %.3f", headM.IPv6, popM.IPv6)
	}
	if headM.HTTP2 <= popM.HTTP2 {
		t.Fatalf("head HTTP2 %.3f <= population %.3f", headM.HTTP2, popM.HTTP2)
	}
	if headM.CAA <= popM.CAA {
		t.Fatalf("head CAA %.4f <= population %.4f", headM.CAA, popM.CAA)
	}
	if headM.CDN <= popM.CDN {
		t.Fatalf("head CDN %.3f <= population %.3f", headM.CDN, popM.CDN)
	}
}

func TestMeasureEmptyAndUnknown(t *testing.T) {
	w := world(t)
	c := NewCampaign(w)
	m := c.Measure(nil, 0)
	if m.N != 0 || m.TLS != 0 {
		t.Fatal("empty measurement")
	}
	m = c.Measure([]string{"not-a-real-domain.example"}, 0)
	if m.NXDOMAIN != 1 {
		t.Fatalf("unknown should be 100%% NXDOMAIN, got %v", m.NXDOMAIN)
	}
}

func TestTopShares(t *testing.T) {
	w := world(t)
	c := NewCampaign(w)
	pop := w.ComNetOrg(5)
	m := c.MeasureIDs(pop, 5)
	asShares := c.TopASShares(m, 5)
	if len(asShares) != 5 {
		t.Fatalf("want 5 AS shares, got %d", len(asShares))
	}
	for i := 1; i < len(asShares); i++ {
		if asShares[i].Share > asShares[i-1].Share {
			t.Fatal("AS shares not sorted")
		}
	}
	sum := 0.0
	for _, s := range asShares {
		sum += s.Share
	}
	if sum <= 0 || sum > 1 {
		t.Fatalf("top-5 AS share sum %v", sum)
	}
	// GoDaddy-style mass hosting dominates the population (paper: 26%).
	if asShares[0].Label != "GoDaddy (26496)" {
		t.Fatalf("population's top AS is %s, want GoDaddy", asShares[0].Label)
	}
	cdnShares := c.TopCDNShares(m, 5)
	if len(cdnShares) == 0 {
		t.Fatal("no CDN shares")
	}
	// Google dominates population CDN share (paper: 71%).
	if cdnShares[0].Label != "Google" {
		t.Fatalf("population's top CDN is %s, want Google", cdnShares[0].Label)
	}
	if cdnShares[0].Share < 0.3 {
		t.Fatalf("google CDN share %.3f too low", cdnShares[0].Share)
	}
}

func TestTopShareHelper(t *testing.T) {
	counts := map[string]int{"a": 50, "b": 30, "c": 10, "d": 5, "e": 3, "f": 2}
	if got := topShare(counts, 5); got != 0.98 {
		t.Fatalf("topShare %v", got)
	}
	if got := topShare(counts, 10); got != 1 {
		t.Fatalf("clamped topShare %v", got)
	}
	if topShare(map[string]int{}, 5) != 0 {
		t.Fatal("empty topShare")
	}
}

func TestClassify(t *testing.T) {
	for _, tc := range []struct {
		value, base, sigma float64
		want               Mark
	}{
		{0.10, 0.04, 0, MarkUp},      // 2.5x above
		{0.01, 0.04, 0, MarkDown},    // 4x below
		{0.045, 0.04, 0, MarkSame},   // within 50%
		{0.30, 0, 0, MarkUp},         // base zero
		{0, 0, 0, MarkSame},          // both zero
		{0.60, 0.45, 0.001, MarkUp},  // base >40%: 25% + 5σ satisfied
		{0.50, 0.45, 0.05, MarkSame}, // base >40%: <25% and within 5σ
		{0.46, 0.45, 0, MarkSame},
	} {
		if got := Classify(tc.value, tc.base, tc.sigma); got != tc.want {
			t.Fatalf("Classify(%v,%v,%v) = %v, want %v",
				tc.value, tc.base, tc.sigma, got, tc.want)
		}
	}
}

func BenchmarkMeasurePopulation(b *testing.B) {
	w, err := population.Build(population.TestConfig())
	if err != nil {
		b.Fatal(err)
	}
	c := NewCampaign(w)
	pop := w.ComNetOrg(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MeasureIDs(pop, 10)
	}
}

func TestClassifyBootstrapDirections(t *testing.T) {
	up := []float64{0.22, 0.23, 0.21, 0.24, 0.22, 0.23}
	base := []float64{0.04, 0.05, 0.04, 0.04, 0.05, 0.04}
	if got := ClassifyBootstrap(up, base, 1); got != MarkUp {
		t.Errorf("clear excess = %v, want ▲", got)
	}
	if got := ClassifyBootstrap(base, up, 1); got != MarkDown {
		t.Errorf("clear deficit = %v, want ▼", got)
	}
	same := []float64{0.10, 0.11, 0.09, 0.12, 0.08, 0.10}
	noisy := []float64{0.12, 0.08, 0.11, 0.09, 0.13, 0.07}
	if got := ClassifyBootstrap(same, noisy, 1); got != MarkSame {
		t.Errorf("overlapping series = %v, want ■", got)
	}
	if got := ClassifyBootstrap(nil, base, 1); got != MarkSame {
		t.Errorf("empty series = %v, want ■", got)
	}
}

func TestVerdictsAgreeOnRealCampaign(t *testing.T) {
	// On the simulated world, IPv6 adoption of a popularity-ranked
	// head must be called ▲ against the population by both the
	// paper's rule and the bootstrap rule (Table 5's core finding).
	w := world(t)
	c := NewCampaign(w)
	pop := w.ComNetOrg(0)
	head := append([]uint32(nil), pop...)
	sort.Slice(head, func(i, j int) bool {
		return w.Domains[head[i]].WebPop > w.Domains[head[j]].WebPop
	})
	head = head[:150]
	var listSeries, baseSeries []float64
	for day := 0; day < 8; day++ {
		lm := c.MeasureIDs(head, day)
		bm := c.MeasureIDs(pop, day)
		listSeries = append(listSeries, lm.IPv6)
		baseSeries = append(baseSeries, bm.IPv6)
	}
	paper, boot, agree := VerdictsAgree(listSeries, baseSeries, 7)
	if paper != MarkUp || boot != MarkUp {
		t.Errorf("head IPv6 vs population: paper %s, bootstrap %s, want ▲/▲", paper, boot)
	}
	if !agree {
		t.Error("rules disagree on a clear-cut bias")
	}
}
