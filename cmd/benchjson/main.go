// Command benchjson converts `go test -bench` text output on stdin
// into a machine-readable JSON document on stdout — the format of the
// BENCH_engine.json perf-trajectory artifact CI uploads per run.
//
// Usage:
//
//	go test -run '^$' -bench '^BenchmarkEngine$' . | go run ./cmd/benchjson > BENCH_engine.json
//
// Every benchmark result line becomes one entry preserving input
// order; the ns/op figure plus any custom metrics (days/sec, B/op,
// allocs/op) are parsed into numeric fields, so a trajectory of
// artifacts diffs cleanly.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// document is the artifact root.
type document struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Package string   `json:"pkg,omitempty"`
	Results []result `json:"results"`
}

func main() {
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*document, error) {
	doc := &document{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseResult(line)
			if ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	return doc, sc.Err()
}

// parseResult parses one result line of the form
//
//	BenchmarkName-8   12   93111 ns/op   42.1 days/sec   16 B/op   3 allocs/op
func parseResult(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		if fields[i+1] == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Metrics == nil {
			r.Metrics = make(map[string]float64)
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
