package dnsd

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/simnet"
)

// testZone builds a small authoritative zone exercising every answer
// shape the measurement campaigns consume.
func testZone() *simnet.StaticZone {
	z := simnet.NewStaticZone()
	z.Add("plain.example.com", simnet.Response{
		RCode: simnet.RCodeNoError, A: 0x0A000001, AAAA: true, CAA: true, TTL: 300,
	})
	z.Add("v4only.example.com", simnet.Response{
		RCode: simnet.RCodeNoError, A: 0x0A000002, TTL: 60,
	})
	z.Add("www.chain.example.com", simnet.Response{
		RCode: simnet.RCodeNoError,
		Chain: []string{"edge.cdn.example.net", "origin.cdn.example.net"},
		A:     0x0A000003, TTL: 120,
	})
	z.Add("broken.example.com", simnet.Response{RCode: simnet.RCodeServFail})
	return z
}

func startServer(t *testing.T, zone simnet.Zone, opts ...Option) *Server {
	t.Helper()
	s, err := Listen(zone, "127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestUDPQueryShapes(t *testing.T) {
	s := startServer(t, testZone())
	r := NewResolver(s.Addr(), WithSeed(1))
	ctx := context.Background()

	t.Run("A+AAAA+CAA", func(t *testing.T) {
		res, err := r.Resolve(ctx, "plain.example.com")
		if err != nil {
			t.Fatal(err)
		}
		if res.RCode != simnet.RCodeNoError || !res.HasA || !res.AAAA || !res.CAA {
			t.Errorf("res = %+v", res)
		}
		if res.TTL != 300 {
			t.Errorf("TTL = %d, want 300", res.TTL)
		}
	})
	t.Run("v4 only", func(t *testing.T) {
		res, err := r.Resolve(ctx, "v4only.example.com")
		if err != nil {
			t.Fatal(err)
		}
		if !res.HasA || res.AAAA || res.CAA {
			t.Errorf("res = %+v", res)
		}
	})
	t.Run("CNAME chain order", func(t *testing.T) {
		res, err := r.Resolve(ctx, "www.chain.example.com")
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"edge.cdn.example.net", "origin.cdn.example.net"}
		if !reflect.DeepEqual(res.Chain, want) {
			t.Errorf("chain = %v, want %v", res.Chain, want)
		}
		if !res.HasA {
			t.Error("terminal A record missing")
		}
	})
	t.Run("NXDOMAIN", func(t *testing.T) {
		res, err := r.Resolve(ctx, "nosuch.example.com")
		if err != nil {
			t.Fatal(err)
		}
		if res.RCode != simnet.RCodeNXDomain || res.HasA {
			t.Errorf("res = %+v", res)
		}
	})
	t.Run("SERVFAIL", func(t *testing.T) {
		res, err := r.Resolve(ctx, "broken.example.com")
		if err != nil {
			t.Fatal(err)
		}
		if res.RCode != simnet.RCodeServFail {
			t.Errorf("rcode = %v", res.RCode)
		}
	})

	if st := s.Stats(); st.UDPQueries == 0 || st.TCPQueries != 0 {
		t.Errorf("stats = %+v, want UDP-only traffic", st)
	}
}

// longChainZone returns a zone whose answer encodes past the UDP
// payload limit, forcing TC + TCP fallback.
func longChainZone() (*simnet.StaticZone, []string) {
	z := simnet.NewStaticZone()
	var chain []string
	for i := 0; i < 12; i++ {
		chain = append(chain, fmt.Sprintf(
			"hop%02d.%s.very-long-intermediate-cdn-tier.example.net",
			i, strings.Repeat("x", 40)))
	}
	z.Add("big.example.com", simnet.Response{
		RCode: simnet.RCodeNoError, Chain: chain, A: 0x0A0000FF, TTL: 30,
	})
	return z, chain
}

func TestTruncationFallsBackToTCP(t *testing.T) {
	zone, chain := longChainZone()
	s := startServer(t, zone)
	r := NewResolver(s.Addr(), WithSeed(2))

	res, err := r.Resolve(context.Background(), "big.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Chain, chain) {
		t.Fatalf("chain mismatch over TCP: got %d hops, want %d", len(res.Chain), len(chain))
	}
	if !res.HasA {
		t.Error("terminal A lost in fallback")
	}
	if got := r.TCPUpgrades(); got == 0 {
		t.Error("resolver never upgraded to TCP")
	}
	st := s.Stats()
	if st.Truncated == 0 || st.TCPQueries == 0 {
		t.Errorf("stats = %+v, want truncation and TCP traffic", st)
	}
}

func TestServerAnswersFORMERRForGarbage(t *testing.T) {
	s := startServer(t, testZone())
	conn, err := net.Dial("udp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// 12 garbage bytes: decodable header region, undecodable rest.
	garbage := []byte{0xAB, 0xCD, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := conn.Write(garbage); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	buf := make([]byte, 512)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := simnet.DecodeMessage(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != 0xABCD || m.RCode != simnet.RCodeFormErr || !m.Response {
		t.Errorf("FORMERR reply = %+v", m)
	}
	if st := s.Stats(); st.Malformed == 0 {
		t.Errorf("stats = %+v, want malformed count", st)
	}
}

func TestResolverIgnoresMismatchedAnswers(t *testing.T) {
	// A hostile/buggy server that answers first with a wrong ID, then
	// with a wrong question, then correctly.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go func() {
		buf := make([]byte, 512)
		n, peer, err := pc.ReadFrom(buf)
		if err != nil {
			return
		}
		q, err := simnet.DecodeMessage(buf[:n])
		if err != nil {
			return
		}
		send := func(m *simnet.Message) {
			b, err := m.Encode()
			if err != nil {
				return
			}
			pc.WriteTo(b, peer) //nolint:errcheck
		}
		// Wrong ID (spoof attempt).
		send(&simnet.Message{ID: q.ID + 1, Response: true, Question: q.Question})
		// Wrong question name.
		send(&simnet.Message{ID: q.ID, Response: true,
			Question: simnet.Question{Name: "other.example.com", Type: q.Question.Type, Class: simnet.ClassIN}})
		// Correct answer.
		good := simnet.BuildAnswer(q.ID, q.Question.Name, q.Question.Type,
			simnet.Response{RCode: simnet.RCodeNoError, A: 0x7F000001, TTL: 5})
		send(good)
	}()

	r := NewResolver(pc.LocalAddr().String(), WithSeed(3))
	m, err := r.Exchange(context.Background(), "victim.example.com", simnet.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Answers) != 1 || m.Answers[0].Type != simnet.TypeA {
		t.Fatalf("answer = %+v, want the genuine A record", m.Answers)
	}
}

func TestResolverRetriesLostDatagram(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go func() {
		buf := make([]byte, 512)
		// Drop the first query silently; answer the second.
		if _, _, err := pc.ReadFrom(buf); err != nil {
			return
		}
		n, peer, err := pc.ReadFrom(buf)
		if err != nil {
			return
		}
		q, err := simnet.DecodeMessage(buf[:n])
		if err != nil {
			return
		}
		m := simnet.BuildAnswer(q.ID, q.Question.Name, q.Question.Type,
			simnet.Response{RCode: simnet.RCodeNoError, A: 1, TTL: 5})
		b, err := m.Encode()
		if err != nil {
			return
		}
		pc.WriteTo(b, peer) //nolint:errcheck
	}()

	r := NewResolver(pc.LocalAddr().String(),
		WithSeed(4), WithTimeout(200*time.Millisecond), WithUDPTries(2))
	if _, err := r.Exchange(context.Background(), "retry.example.com", simnet.TypeA); err != nil {
		t.Fatalf("retry should have succeeded: %v", err)
	}
}

func TestResolverTimesOutAgainstBlackHole(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close() // never answers

	r := NewResolver(pc.LocalAddr().String(),
		WithSeed(5), WithTimeout(100*time.Millisecond), WithUDPTries(2))
	start := time.Now()
	_, err = r.Exchange(context.Background(), "void.example.com", simnet.TypeA)
	if err == nil {
		t.Fatal("want timeout error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("gave up too slowly: %v", elapsed)
	}
	if !strings.Contains(err.Error(), "2 tries") {
		t.Errorf("err = %v, want try count", err)
	}
}

func TestResolverHonoursContextCancel(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close() // black hole

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	r := NewResolver(pc.LocalAddr().String(), WithSeed(6), WithTimeout(10*time.Second))
	start := time.Now()
	if _, err := r.Exchange(ctx, "ctx.example.com", simnet.TypeA); err == nil {
		t.Fatal("want context deadline error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("context deadline ignored: took %v", elapsed)
	}
}

func TestTCPConnectionPipelinesQueries(t *testing.T) {
	s := startServer(t, testZone())
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck

	for i, name := range []string{"plain.example.com", "v4only.example.com", "nosuch.example.com"} {
		q := &simnet.Message{
			ID:        uint16(100 + i),
			Recursion: true,
			Question:  simnet.Question{Name: name, Type: simnet.TypeA, Class: simnet.ClassIN},
		}
		wire, err := q.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(conn, wire); err != nil {
			t.Fatal(err)
		}
		raw, err := readFrame(conn)
		if err != nil {
			t.Fatalf("query %d on shared conn: %v", i, err)
		}
		m, err := simnet.DecodeMessage(raw)
		if err != nil {
			t.Fatal(err)
		}
		if m.ID != q.ID || !strings.EqualFold(m.Question.Name, name) {
			t.Fatalf("answer %d mismatched: %+v", i, m)
		}
	}
	if st := s.Stats(); st.TCPQueries != 3 {
		t.Errorf("TCPQueries = %d, want 3", st.TCPQueries)
	}
}

func TestTCPIdleTimeoutClosesConnection(t *testing.T) {
	s := startServer(t, testZone(), WithIdleTimeout(50*time.Millisecond))
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	buf := make([]byte, 2)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle connection should have been closed by the server")
	}
}

func TestServerCloseIsIdempotentAndStopsService(t *testing.T) {
	s := startServer(t, testZone())
	addr := s.Addr()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	r := NewResolver(addr, WithSeed(7), WithTimeout(100*time.Millisecond), WithUDPTries(1))
	if _, err := r.Exchange(context.Background(), "plain.example.com", simnet.TypeA); err == nil {
		t.Fatal("closed server still answered")
	}
}

func TestResolveAllMatchesDirectLookups(t *testing.T) {
	zone := simnet.NewStaticZone()
	var names []string
	for i := 0; i < 60; i++ {
		name := fmt.Sprintf("host%02d.example.org", i)
		names = append(names, name)
		switch i % 3 {
		case 0:
			zone.Add(name, simnet.Response{RCode: simnet.RCodeNoError, A: uint32(i + 1), AAAA: true, TTL: 10})
		case 1:
			zone.Add(name, simnet.Response{RCode: simnet.RCodeNoError, A: uint32(i + 1), CAA: true, TTL: 10})
			// case 2: left NXDOMAIN
		}
	}
	s := startServer(t, zone)
	r := NewResolver(s.Addr(), WithSeed(8))

	results, err := ResolveAll(context.Background(), r, names, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(names) {
		t.Fatalf("results = %d, want %d", len(results), len(names))
	}
	for i, res := range results {
		if res.Name != names[i] {
			t.Fatalf("result %d out of order: %s", i, res.Name)
		}
		want := zone.Lookup(names[i])
		if (res.RCode != want.RCode) || (res.AAAA != want.AAAA) ||
			(want.RCode == simnet.RCodeNoError && res.CAA != want.CAA) {
			t.Errorf("%s: got %+v, want %+v", names[i], res, want)
		}
	}
}

func TestResolveAllPropagatesTransportError(t *testing.T) {
	s := startServer(t, testZone())
	addr := s.Addr()
	s.Close()
	r := NewResolver(addr, WithSeed(9), WithTimeout(50*time.Millisecond), WithUDPTries(1))
	_, err := ResolveAll(context.Background(), r, []string{"a.com", "b.com", "c.com"}, 3)
	if err == nil {
		t.Fatal("want transport error from dead server")
	}
}

func TestConcurrentUDPLoad(t *testing.T) {
	s := startServer(t, testZone())
	r := NewResolver(s.Addr(), WithSeed(10))
	ctx := context.Background()

	const goroutines = 16
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			for i := 0; i < 25; i++ {
				if _, err := r.Exchange(ctx, "plain.example.com", simnet.TypeA); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.UDPQueries < goroutines*25 {
		t.Errorf("UDPQueries = %d, want >= %d", st.UDPQueries, goroutines*25)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf strings.Builder
	msg := []byte("\x12\x34hello frame")
	if err := writeFrame(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("frame = %q, want %q", got, msg)
	}
	// Zero-length and oversized frames are rejected.
	if _, err := readFrame(strings.NewReader("\x00\x00")); err == nil {
		t.Error("zero frame accepted")
	}
	if err := writeFrame(&buf, make([]byte, maxTCPMessage+1)); err == nil {
		t.Error("oversized frame accepted")
	}
}
