// Command collectd is the longitudinal collector behind the paper's
// §4 dataset: pointed at a snapshot publisher (cmd/toplistd or any
// server speaking the same routes), it downloads every provider's
// daily CSV it has not stored yet and writes them to disk as
// <provider>-<date>.csv — exactly the archive layout researchers
// shared with the authors. Run it with -interval to keep following a
// live publisher, or -once for a single catch-up pass.
//
// Usage:
//
//	collectd -url http://host:8080 -out archive [-once] [-interval 1h]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/listserv"
	"repro/internal/toplist"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "collectd:", err)
		os.Exit(1)
	}
}

func run(args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("collectd", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "publisher base URL")
	outDir := fs.String("out", "archive", "output directory for CSV snapshots")
	once := fs.Bool("once", false, "catch up and exit instead of following")
	interval := fs.Duration("interval", time.Hour, "poll interval in follow mode")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	logger := log.New(logw, "collectd: ", log.LstdFlags)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := listserv.NewClient(*url, listserv.WithFormat(listserv.FormatZip))

	if _, err := collectOnce(ctx, client, *outDir, logger); err != nil {
		return err
	}
	if *once {
		return nil
	}
	t := time.NewTicker(*interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			logger.Print("stopping")
			return nil
		case <-t.C:
			if _, err := collectOnce(ctx, client, *outDir, logger); err != nil {
				// A failed pass is not fatal in follow mode: the next
				// tick retries, like a cron-driven collector.
				logger.Printf("pass failed: %v", err)
			}
		}
	}
}

// collectOnce downloads every published snapshot not yet on disk and
// returns how many files it wrote. Partially-written files never
// become visible: snapshots are written to a temp name and renamed.
func collectOnce(ctx context.Context, client *listserv.Client, outDir string, logger *log.Logger) (int, error) {
	idx, err := client.Index(ctx)
	if err != nil {
		return 0, err
	}
	first, err := toplist.ParseDay(idx.FirstDay)
	if err != nil {
		return 0, fmt.Errorf("bad index first_day: %w", err)
	}
	last, err := toplist.ParseDay(idx.LastDay)
	if err != nil {
		return 0, fmt.Errorf("bad index last_day: %w", err)
	}
	written := 0
	for _, provider := range idx.Providers {
		for d := first; d <= last; d++ {
			path := filepath.Join(outDir, fmt.Sprintf("%s-%s.csv", provider, d))
			if _, err := os.Stat(path); err == nil {
				continue // already collected
			}
			list, err := client.FetchDay(ctx, provider, d)
			if listserv.IsNotFound(err) {
				logger.Printf("gap: %s %s not published", provider, d)
				continue
			}
			if err != nil {
				return written, err
			}
			if err := writeSnapshot(path, list); err != nil {
				return written, err
			}
			written++
		}
	}
	if written > 0 {
		logger.Printf("collected %d new snapshots into %s", written, outDir)
	}
	return written, nil
}

func writeSnapshot(path string, list *toplist.List) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = toplist.WriteCSV(f, list)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	return os.Rename(tmp, path)
}
