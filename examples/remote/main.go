// Remote: the multi-machine version of examples/resume. Simulate the
// ecosystem once while persisting every snapshot to a durable on-disk
// archive, serve that archive over the versioned HTTP wire API, reopen
// it from the network with toplists.OpenRemote, and rerun an
// experiment against the remote source — no resimulation, no local
// copy, byte-identical output.
//
// This is the step from the paper's single-box workflow (collect the
// JOINT dataset once, re-read it locally) to an archive host serving
// many analysis consumers: everything reads through toplists.Source,
// so the analysis code cannot tell the difference — and proves it by
// comparing output bytes.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro"
)

func main() {
	ctx := context.Background()
	scale := toplists.TestScale()
	scale.Population.Days = 21
	scale.BurnInDays = 30

	dir := filepath.Join(os.TempDir(), fmt.Sprintf("toplists-remote-%d", os.Getpid()))
	defer os.RemoveAll(dir)

	// Pass 1: simulate, teeing every snapshot into the durable store,
	// and run the experiment locally for the reference output.
	simLab := toplists.NewLab(
		toplists.WithScale(scale),
		toplists.WithArchiveDir(dir))
	want, err := simLab.Run(ctx, "table5")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated and persisted to %s\n", dir)

	// Serve the archive over HTTP — what `toplistd -archive DIR
	// -serve-archive` does, inlined here so the example is
	// self-contained.
	store, err := toplists.OpenArchive(dir)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: toplists.ArchiveHandler(store)}
	go srv.Serve(ln) //nolint:errcheck // closed via Shutdown below
	defer func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx) //nolint:errcheck
	}()
	url := "http://" + ln.Addr().String()
	fmt.Printf("serving archive wire API at %s\n", url)

	// Pass 2 (any machine that can reach the server): reopen the
	// archive over HTTP and rerun the experiment against it.
	start := time.Now()
	remote, err := toplists.OpenRemote(ctx, url)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reopened remote archive: scale %q, %d providers x %d days\n",
		remote.Scale(), len(remote.Providers()), remote.Days())
	remoteLab := toplists.NewLab(
		toplists.WithScale(scale),
		toplists.WithSource(remote))
	got, err := remoteLab.Run(ctx, "table5")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(got.Render())
	fmt.Printf("\nremote rerun took %v (LRU cache holds the fetched snapshots)\n",
		time.Since(start).Round(time.Millisecond))

	if want.Render() == got.Render() {
		fmt.Println("outputs are byte-identical: the network hop changes nothing.")
	} else {
		log.Fatal("outputs differ — the remote source is broken")
	}
}
